package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"walrus/internal/store"
)

// RecoveryStats reports what Recover found and did.
type RecoveryStats struct {
	// Replayed is true when the log contained at least one committed
	// record — i.e. the database was not shut down cleanly.
	Replayed bool
	// RecordsScanned counts records in the committed region of the log.
	RecordsScanned int
	// PagesApplied counts page images written to the page file.
	PagesApplied int
	// PagesSkipped counts page images whose LSN did not exceed the
	// on-disk page LSN (already reflected; the ARIES pageLSN test).
	PagesSkipped int
	// AppRecords counts app records delivered to the callback.
	AppRecords int
	// Commits and Checkpoints count the respective markers.
	Commits, Checkpoints int
	// TornBytes is the number of trailing log bytes discarded: a torn or
	// corrupt tail plus any complete records of an uncommitted trailing
	// transaction.
	TornBytes int64
	// LastCheckpointLSN is the LSN of the last checkpoint record in the
	// committed region (0 if none).
	LastCheckpointLSN LSN
}

// AppFunc receives committed app records during recovery, oldest first.
// The database layer filters by LSN against its catalog snapshot.
type AppFunc func(lsn LSN, kind byte, payload []byte) error

// scanned is one well-formed record found by scanLog.
type scanned struct {
	off     int64 // offset of the record header, relative to the record region
	typ     byte
	kind    byte
	pageID  uint32
	payload []byte // aliases the scanned buffer
}

// scanLog parses the record region of a log (everything after the
// header). It stops at the first torn, truncated or corrupt record and
// returns the well-formed prefix, the end offset of the last committed
// transaction (commit or checkpoint marker), and the index just past the
// last checkpoint (0 if none). pageSize bounds plausible payload sizes.
func scanLog(data []byte, pageSize int) (recs []scanned, commitEnd int64, afterCkpt int, lastCkpt int) {
	maxPayload := pageSize
	if maxPayload < 1<<20 {
		maxPayload = 1 << 20 // app records (catalog deltas) can outgrow a page
	}
	usable := pageSize - store.PageFooterSize
	lastCkpt = -1
	var off int64
	for int64(len(data))-off >= RecordOverhead {
		h := data[off : off+RecordOverhead]
		plen := int(binary.LittleEndian.Uint32(h[0:]))
		typ := h[8]
		if typ < recPage || typ > recApp || plen > maxPayload {
			break
		}
		if typ == recPage && plen != usable {
			break
		}
		end := off + RecordOverhead + int64(plen)
		if end > int64(len(data)) {
			break // torn tail: record extends past the file
		}
		payload := data[off+RecordOverhead : end]
		sum := crc32.Checksum(h[8:RecordOverhead], walCRC)
		sum = crc32.Update(sum, walCRC, payload)
		if binary.LittleEndian.Uint32(h[4:]) != sum {
			break
		}
		recs = append(recs, scanned{
			off:     off,
			typ:     typ,
			kind:    h[9],
			pageID:  binary.LittleEndian.Uint32(h[12:]),
			payload: payload,
		})
		if typ == recCommit || typ == recCheckpoint {
			commitEnd = end
		}
		if typ == recCheckpoint {
			afterCkpt = len(recs)
			lastCkpt = len(recs) - 1
		}
		off = end
	}
	// Trim records of the uncommitted trailing transaction.
	n := len(recs)
	for n > 0 && recs[n-1].off+RecordOverhead+int64(len(recs[n-1].payload)) > commitEnd {
		n--
	}
	return recs[:n], commitEnd, afterCkpt, lastCkpt
}

// readAll reads a File from the start until EOF.
func readAll(f store.File) ([]byte, error) {
	var out []byte
	buf := make([]byte, 1<<16)
	var off int64
	for {
		n, err := f.ReadAt(buf, off)
		out = append(out, buf[:n]...)
		off += int64(n)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
	}
}

// Recover replays logFile against dbFile (the page file, accessed below
// the Pager) and returns a Log positioned for appending after the last
// committed record.
//
// The scan walks the record region from the front, stops at the first
// torn or corrupt record, and discards everything after the last commit
// or checkpoint marker — an in-flight transaction's records are dropped
// wholesale, which together with the no-steal buffer-pool policy makes
// every operation atomic across crashes. Page images after the last
// checkpoint are reapplied if their LSN exceeds the on-disk page LSN (a
// page whose footer fails its checksum — a torn page write — counts as
// LSN 0 and is always repaired). Committed app records are handed to
// onApp oldest-first, including those before the checkpoint, because the
// catalog snapshot may predate it; the caller filters by LSN. Finally
// the log is truncated to the committed region.
//
// If the log header itself is unreadable (torn during Reset), the log is
// reinitialized empty with fallbackPageSize and fallbackBase, which the
// caller recovers from the page file's meta (store.PeekMeta).
func Recover(logFile, dbFile store.File, fallbackPageSize int, fallbackBase LSN, onApp AppFunc) (*Log, RecoveryStats, error) {
	var stats RecoveryStats
	raw, err := readAll(logFile)
	if err != nil {
		return nil, stats, fmt.Errorf("wal: reading log: %w", err)
	}
	pageSize, base, ok := decodeHeader(raw)
	if !ok {
		// A torn header can only result from a crash during Reset, at
		// which point the previous generation was fully checkpointed:
		// the page file and catalog are self-consistent and the log
		// carries nothing to replay.
		stats.TornBytes = int64(len(raw))
		l, err := Create(logFile, fallbackPageSize, fallbackBase)
		return l, stats, err
	}

	recs, commitEnd, afterCkpt, lastCkpt := scanLog(raw[headerSize:], pageSize)
	stats.RecordsScanned = len(recs)
	stats.TornBytes = int64(len(raw)) - (headerSize + commitEnd)
	stats.Replayed = len(recs) > 0
	if lastCkpt >= 0 {
		stats.LastCheckpointLSN = base + LSN(recs[lastCkpt].off)
	}

	// Redo pass: reapply committed page images after the last checkpoint.
	usable := pageSize - store.PageFooterSize
	page := make([]byte, pageSize)
	for _, r := range recs {
		switch r.typ {
		case recCommit:
			stats.Commits++
		case recCheckpoint:
			stats.Checkpoints++
		}
	}
	for _, r := range recs[afterCkpt:] {
		if r.typ != recPage {
			continue
		}
		recLSN := base + LSN(r.off)
		diskLSN := LSN(0)
		off := int64(r.pageID) * int64(pageSize)
		if n, err := dbFile.ReadAt(page, off); err == nil && n == pageSize {
			if lsn, ok := store.CheckPageFooter(page); ok {
				diskLSN = LSN(lsn)
			}
		}
		if recLSN <= diskLSN {
			stats.PagesSkipped++
			continue
		}
		copy(page, r.payload)
		for i := usable; i < pageSize; i++ {
			page[i] = 0
		}
		store.StampPageFooter(page, uint64(recLSN))
		if _, err := dbFile.WriteAt(page, off); err != nil {
			return nil, stats, fmt.Errorf("wal: replaying page %d: %w", r.pageID, err)
		}
		stats.PagesApplied++
	}
	if stats.PagesApplied > 0 {
		if err := dbFile.Sync(); err != nil {
			return nil, stats, fmt.Errorf("wal: syncing page file after replay: %w", err)
		}
	}

	// Deliver committed app records (catalog deltas), oldest first.
	for _, r := range recs {
		if r.typ != recApp {
			continue
		}
		stats.AppRecords++
		if onApp != nil {
			if err := onApp(base+LSN(r.off), r.kind, r.payload); err != nil {
				return nil, stats, err
			}
		}
	}

	// Drop the torn/uncommitted tail so new appends start clean.
	logEnd := headerSize + commitEnd
	if int64(len(raw)) > logEnd {
		if err := logFile.Truncate(logEnd); err != nil {
			return nil, stats, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	l := &Log{f: logFile, pageSize: pageSize, base: base, written: logEnd, durable: logEnd}
	return l, stats, nil
}
