// Package gist implements an in-memory Generalized Search Tree
// (Hellerstein, Naughton, Pfaltz, VLDB 1995). The WALRUS paper built its
// disk-based index on the libgist package, which provides exactly this
// abstraction "that makes it easy to implement any type of hierarchical
// access method" and ships B-tree and R-tree extensions (Section 6.1); we
// provide the same: a generic height-balanced tree parameterized by a key
// class, with interval (B-tree-style) and rectangle (R-tree-style)
// instantiations in this package. The production WALRUS index is the
// purpose-built R*-tree in package rstar; gist exists for parity with the
// paper's infrastructure and as the general framework.
package gist

import "fmt"

// Ops defines a GiST key class: the four extension methods of the GiST
// paper (Consistent, Union, Penalty, PickSplit) plus key equality, which
// the framework needs for deletion.
type Ops[K any] interface {
	// Consistent reports whether an entry with key k can match query q.
	// For internal entries k covers a subtree; for leaf entries k is the
	// stored key.
	Consistent(k, q K) bool
	// Union returns a key covering every key in keys (len >= 1).
	Union(keys []K) K
	// Penalty returns the cost of extending the subtree key have to also
	// cover add; insertion descends into the child with minimal penalty.
	Penalty(have, add K) float64
	// PickSplit partitions the keys of an overflowing node (len >= 2) into
	// two non-empty groups, returned as index lists covering every key
	// exactly once.
	PickSplit(keys []K) (left, right []int)
	// Equal reports key equality (used by Delete).
	Equal(a, b K) bool
}

// entry is one slot of a node.
type entry[K any] struct {
	key   K
	child *node[K] // nil at leaves
	data  int64
}

type node[K any] struct {
	leaf    bool
	entries []entry[K]
}

// Tree is a generalized search tree. Not safe for concurrent mutation.
type Tree[K any] struct {
	ops  Ops[K]
	root *node[K]
	maxE int
	minE int
	size int
}

// New creates an empty tree with the given node capacity (>= 4).
func New[K any](ops Ops[K], maxEntries int) (*Tree[K], error) {
	if maxEntries < 4 {
		return nil, fmt.Errorf("gist: node capacity %d < 4", maxEntries)
	}
	return &Tree[K]{
		ops:  ops,
		root: &node[K]{leaf: true},
		maxE: maxEntries,
		minE: maxEntries * 2 / 5,
	}, nil
}

// Len returns the number of stored entries.
func (t *Tree[K]) Len() int { return t.size }

// Insert stores (key, data). Duplicates are allowed.
func (t *Tree[K]) Insert(key K, data int64) {
	if l, r := t.insert(t.root, entry[K]{key: key, data: data}); l != nil {
		t.root = &node[K]{entries: []entry[K]{*l, *r}}
	}
	t.size++
}

// insert places e below n, returning replacement entries when n splits.
func (t *Tree[K]) insert(n *node[K], e entry[K]) (*entry[K], *entry[K]) {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) <= t.maxE {
			return nil, nil
		}
		return t.split(n)
	}
	// ChooseSubtree: minimal penalty.
	best := 0
	bestPen := t.ops.Penalty(n.entries[0].key, e.key)
	for i := 1; i < len(n.entries); i++ {
		if p := t.ops.Penalty(n.entries[i].key, e.key); p < bestPen {
			bestPen = p
			best = i
		}
	}
	l, r := t.insert(n.entries[best].child, e)
	if l == nil {
		// AdjustKeys: the chosen subtree's key must now cover e.
		n.entries[best].key = t.ops.Union([]K{n.entries[best].key, e.key})
		return nil, nil
	}
	n.entries[best] = *l
	n.entries = append(n.entries, *r)
	if len(n.entries) <= t.maxE {
		return nil, nil
	}
	return t.split(n)
}

// split partitions an overflowing node with the key class's PickSplit.
func (t *Tree[K]) split(n *node[K]) (*entry[K], *entry[K]) {
	keys := make([]K, len(n.entries))
	for i, e := range n.entries {
		keys[i] = e.key
	}
	leftIdx, rightIdx := t.ops.PickSplit(keys)
	if len(leftIdx) == 0 || len(rightIdx) == 0 || len(leftIdx)+len(rightIdx) != len(keys) {
		// A defective PickSplit would corrupt the tree; fall back to an
		// even split so the structure stays valid.
		leftIdx = leftIdx[:0]
		rightIdx = rightIdx[:0]
		for i := range keys {
			if i < len(keys)/2 {
				leftIdx = append(leftIdx, i)
			} else {
				rightIdx = append(rightIdx, i)
			}
		}
	}
	left := &node[K]{leaf: n.leaf}
	right := &node[K]{leaf: n.leaf}
	for _, i := range leftIdx {
		left.entries = append(left.entries, n.entries[i])
	}
	for _, i := range rightIdx {
		right.entries = append(right.entries, n.entries[i])
	}
	return &entry[K]{key: t.keyOf(left), child: left}, &entry[K]{key: t.keyOf(right), child: right}
}

func (t *Tree[K]) keyOf(n *node[K]) K {
	keys := make([]K, len(n.entries))
	for i, e := range n.entries {
		keys[i] = e.key
	}
	return t.ops.Union(keys)
}

// Search calls fn for every stored (key, data) whose key is Consistent
// with q, stopping early if fn returns false.
func (t *Tree[K]) Search(q K, fn func(key K, data int64) bool) {
	t.search(t.root, q, fn)
}

func (t *Tree[K]) search(n *node[K], q K, fn func(K, int64) bool) bool {
	for _, e := range n.entries {
		if !t.ops.Consistent(e.key, q) {
			continue
		}
		if n.leaf {
			if !fn(e.key, e.data) {
				return false
			}
			continue
		}
		if !t.search(e.child, q, fn) {
			return false
		}
	}
	return true
}

// SearchAll collects all data values whose keys are Consistent with q.
func (t *Tree[K]) SearchAll(q K) []int64 {
	var out []int64
	t.Search(q, func(_ K, data int64) bool {
		out = append(out, data)
		return true
	})
	return out
}

// Delete removes one entry with an Equal key and matching data, reporting
// whether one was found. Underflowing nodes are dissolved and their
// entries reinserted.
func (t *Tree[K]) Delete(key K, data int64) bool {
	var orphans []entry[K]
	found := t.delete(t.root, key, data, &orphans)
	if !found {
		return false
	}
	t.size--
	for _, o := range orphans {
		// Orphans from dissolved leaves are data entries; orphans from
		// dissolved internal nodes are whole subtrees, which we flatten.
		t.reinsert(o)
	}
	// Shrink the root.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &node[K]{leaf: true}
	}
	return true
}

func (t *Tree[K]) reinsert(e entry[K]) {
	if e.child == nil {
		if l, r := t.insert(t.root, e); l != nil {
			t.root = &node[K]{entries: []entry[K]{*l, *r}}
		}
		return
	}
	for _, ce := range e.child.entries {
		t.reinsert(ce)
	}
}

// delete removes the entry below n, collecting orphaned entries of
// dissolved nodes. It returns whether the entry was found.
func (t *Tree[K]) delete(n *node[K], key K, data int64, orphans *[]entry[K]) bool {
	if n.leaf {
		for i, e := range n.entries {
			if e.data == data && t.ops.Equal(e.key, key) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true
			}
		}
		return false
	}
	for i, e := range n.entries {
		if !t.ops.Consistent(e.key, key) {
			continue
		}
		if !t.delete(e.child, key, data, orphans) {
			continue
		}
		if len(e.child.entries) < t.minE {
			// Dissolve the child.
			*orphans = append(*orphans, e.child.entries...)
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			n.entries[i].key = t.keyOf(e.child)
		}
		return true
	}
	return false
}

// CheckInvariants verifies structural soundness: entry counts, uniform
// leaf depth, internal keys covering their subtrees (every child key must
// be Consistent with its parent key — a necessary condition for search
// correctness when Consistent is reflexive containment, as in both bundled
// key classes), and the stored size.
func (t *Tree[K]) CheckInvariants() error {
	count := 0
	depth := -1
	var walk func(n *node[K], level int) error
	walk = func(n *node[K], level int) error {
		if len(n.entries) > t.maxE {
			return fmt.Errorf("gist: node has %d entries, max %d", len(n.entries), t.maxE)
		}
		if n.leaf {
			if depth == -1 {
				depth = level
			} else if depth != level {
				return fmt.Errorf("gist: leaves at depths %d and %d", depth, level)
			}
			count += len(n.entries)
			return nil
		}
		for _, e := range n.entries {
			if e.child == nil {
				return fmt.Errorf("gist: internal entry without child")
			}
			for _, ce := range e.child.entries {
				if !t.ops.Consistent(e.key, ce.key) {
					return fmt.Errorf("gist: parent key does not cover child key")
				}
			}
			if err := walk(e.child, level+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("gist: tree holds %d entries, Len() says %d", count, t.size)
	}
	return nil
}

// Height returns the number of levels in the tree (1 = the root is a
// leaf).
func (t *Tree[K]) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.entries[0].child {
		h++
		if len(n.entries) == 0 {
			break
		}
	}
	return h
}
