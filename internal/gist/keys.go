package gist

import (
	"sort"

	"walrus/internal/rstar"
)

// Interval is a closed 1-D interval, the key class of the B-tree-style
// GiST extension. A point is an interval with Min == Max.
type Interval struct {
	Min, Max float64
}

// PointKey returns the degenerate interval at v.
func PointKey(v float64) Interval { return Interval{Min: v, Max: v} }

// IntervalOps is the B-tree-like key class: keys are intervals, queries
// match by overlap, and nodes split at the median of the sorted interval
// starts (yielding the ordered, range-searchable structure a B-tree
// provides).
type IntervalOps struct{}

// Consistent implements Ops: interval overlap.
func (IntervalOps) Consistent(k, q Interval) bool {
	return k.Min <= q.Max && q.Min <= k.Max
}

// Union implements Ops: the covering interval.
func (IntervalOps) Union(keys []Interval) Interval {
	out := keys[0]
	for _, k := range keys[1:] {
		if k.Min < out.Min {
			out.Min = k.Min
		}
		if k.Max > out.Max {
			out.Max = k.Max
		}
	}
	return out
}

// Penalty implements Ops: the length increase of have when extended to
// cover add.
func (IntervalOps) Penalty(have, add Interval) float64 {
	lo, hi := have.Min, have.Max
	if add.Min < lo {
		lo = add.Min
	}
	if add.Max > hi {
		hi = add.Max
	}
	return (hi - lo) - (have.Max - have.Min)
}

// PickSplit implements Ops: sort by interval start and cut at the median.
func (IntervalOps) PickSplit(keys []Interval) (left, right []int) {
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		if ka.Min != kb.Min {
			return ka.Min < kb.Min
		}
		return ka.Max < kb.Max
	})
	mid := len(idx) / 2
	return idx[:mid], idx[mid:]
}

// Equal implements Ops.
func (IntervalOps) Equal(a, b Interval) bool { return a == b }

// RectOps is the R-tree key class over rstar.Rect: queries match by
// rectangle intersection, penalties are area enlargements (Guttman's
// ChooseLeaf criterion), and splits sort along the axis with the widest
// center spread and cut at the median (a linear-time split).
type RectOps struct{}

// Consistent implements Ops.
func (RectOps) Consistent(k, q rstar.Rect) bool { return k.Intersects(q) }

// Union implements Ops.
func (RectOps) Union(keys []rstar.Rect) rstar.Rect {
	out := keys[0].Clone()
	for _, k := range keys[1:] {
		out = out.Union(k)
	}
	return out
}

// Penalty implements Ops.
func (RectOps) Penalty(have, add rstar.Rect) float64 { return have.Enlargement(add) }

// PickSplit implements Ops.
func (RectOps) PickSplit(keys []rstar.Rect) (left, right []int) {
	dim := keys[0].Dim()
	// Pick the axis with the widest spread of centers.
	bestAxis, bestSpread := 0, -1.0
	for a := 0; a < dim; a++ {
		lo, hi := keys[0].Min[a]+keys[0].Max[a], keys[0].Min[a]+keys[0].Max[a]
		for _, k := range keys[1:] {
			c := k.Min[a] + k.Max[a]
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if spread := hi - lo; spread > bestSpread {
			bestSpread, bestAxis = spread, a
		}
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	a := bestAxis
	sort.Slice(idx, func(x, y int) bool {
		return keys[idx[x]].Min[a]+keys[idx[x]].Max[a] < keys[idx[y]].Min[a]+keys[idx[y]].Max[a]
	})
	mid := len(idx) / 2
	return idx[:mid], idx[mid:]
}

// Equal implements Ops.
func (RectOps) Equal(a, b rstar.Rect) bool { return a.Equal(b) }
