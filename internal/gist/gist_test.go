package gist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"walrus/internal/rstar"
)

func TestNewValidation(t *testing.T) {
	if _, err := New[Interval](IntervalOps{}, 3); err == nil {
		t.Fatal("accepted capacity 3")
	}
}

func sortedInt64(v []int64) []int64 {
	out := append([]int64(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func int64Equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIntervalTreeMatchesBruteForce: range queries over scattered points
// agree with a linear scan (the B-tree-style use).
func TestIntervalTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	tr, err := New[Interval](IntervalOps{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	points := make([]float64, n)
	for i := range points {
		points[i] = rng.Float64() * 100
		tr.Insert(PointKey(points[i]), int64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for q := 0; q < 40; q++ {
		lo := rng.Float64() * 100
		hi := lo + rng.Float64()*20
		got := tr.SearchAll(Interval{Min: lo, Max: hi})
		var want []int64
		for i, p := range points {
			if p >= lo && p <= hi {
				want = append(want, int64(i))
			}
		}
		if !int64Equal(sortedInt64(got), sortedInt64(want)) {
			t.Fatalf("query [%v,%v]: got %d results, want %d", lo, hi, len(got), len(want))
		}
	}
}

// TestRectTreeMatchesBruteForce: the R-tree instantiation agrees with a
// linear scan on rectangle intersection queries.
func TestRectTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	tr, err := New[rstar.Rect](RectOps{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	rects := make([]rstar.Rect, n)
	for i := range rects {
		lo := []float64{rng.Float64(), rng.Float64()}
		hi := []float64{lo[0] + rng.Float64()*0.1, lo[1] + rng.Float64()*0.1}
		r, err := rstar.NewRect(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		rects[i] = r
		tr.Insert(r, int64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 40; q++ {
		query := rstar.Point([]float64{rng.Float64(), rng.Float64()}).Expand(0.08)
		got := tr.SearchAll(query)
		var want []int64
		for i, r := range rects {
			if r.Intersects(query) {
				want = append(want, int64(i))
			}
		}
		if !int64Equal(sortedInt64(got), sortedInt64(want)) {
			t.Fatalf("query %d: got %v want %v", q, sortedInt64(got), sortedInt64(want))
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr, err := New[Interval](IntervalOps{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tr.Insert(PointKey(1), int64(i))
	}
	n := 0
	tr.Search(PointKey(1), func(Interval, int64) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestDeleteAndCondense(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	tr, err := New[Interval](IntervalOps{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	points := make([]float64, n)
	for i := range points {
		points[i] = rng.Float64() * 100
		tr.Insert(PointKey(points[i]), int64(i))
	}
	perm := rng.Perm(n)
	for k, idx := range perm {
		if !tr.Delete(PointKey(points[idx]), int64(idx)) {
			t.Fatalf("Delete(%d) not found", idx)
		}
		if k%41 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", k+1, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if tr.Delete(PointKey(points[0]), 0) {
		t.Fatal("Delete on empty tree reported success")
	}
	// The tree remains usable.
	tr.Insert(PointKey(5), 99)
	if got := tr.SearchAll(PointKey(5)); len(got) != 1 || got[0] != 99 {
		t.Fatalf("reuse: %v", got)
	}
}

// TestGistQuick drives random workloads on the interval instantiation.
func TestGistQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := New[Interval](IntervalOps{}, 4+rng.Intn(12))
		if err != nil {
			return false
		}
		n := 20 + rng.Intn(200)
		points := make([]float64, n)
		alive := map[int64]bool{}
		for i := range points {
			points[i] = rng.Float64() * 10
			tr.Insert(PointKey(points[i]), int64(i))
			alive[int64(i)] = true
		}
		// Random deletions.
		for i := 0; i < n/3; i++ {
			idx := int64(rng.Intn(n))
			if alive[idx] {
				if !tr.Delete(PointKey(points[idx]), idx) {
					return false
				}
				delete(alive, idx)
			}
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		if tr.Len() != len(alive) {
			return false
		}
		for q := 0; q < 5; q++ {
			lo := rng.Float64() * 10
			hi := lo + rng.Float64()*2
			got := tr.SearchAll(Interval{Min: lo, Max: hi})
			var want []int64
			for i, p := range points {
				if alive[int64(i)] && p >= lo && p <= hi {
					want = append(want, int64(i))
				}
			}
			if !int64Equal(sortedInt64(got), sortedInt64(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDefectivePickSplitFallback: the framework survives a key class whose
// PickSplit returns a defective partition.
type badSplitOps struct{ IntervalOps }

func (badSplitOps) PickSplit(keys []Interval) (left, right []int) {
	// Defective: put everything on one side.
	for i := range keys {
		left = append(left, i)
	}
	return left, nil
}

func TestDefectivePickSplitFallback(t *testing.T) {
	tr, err := New[Interval](badSplitOps{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tr.Insert(PointKey(float64(i)), int64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.SearchAll(Interval{Min: 10, Max: 20})
	if len(got) != 11 {
		t.Fatalf("found %d results, want 11", len(got))
	}
}

func TestIntervalOpsUnits(t *testing.T) {
	ops := IntervalOps{}
	if !ops.Consistent(Interval{0, 2}, Interval{2, 3}) {
		t.Error("touching intervals should be consistent")
	}
	if ops.Consistent(Interval{0, 1}, Interval{2, 3}) {
		t.Error("disjoint intervals consistent")
	}
	u := ops.Union([]Interval{{1, 2}, {0, 5}, {3, 9}})
	if u != (Interval{0, 9}) {
		t.Errorf("Union = %v", u)
	}
	if p := ops.Penalty(Interval{0, 1}, Interval{3, 3}); p != 2 {
		t.Errorf("Penalty = %v, want 2", p)
	}
	if p := ops.Penalty(Interval{0, 4}, Interval{1, 2}); p != 0 {
		t.Errorf("contained Penalty = %v, want 0", p)
	}
}

// TestRectTreeDelete: deletion works on the R-tree instantiation too.
func TestRectTreeDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	tr, err := New[rstar.Rect](RectOps{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	const n = 150
	rects := make([]rstar.Rect, n)
	for i := range rects {
		lo := []float64{rng.Float64(), rng.Float64()}
		hi := []float64{lo[0] + rng.Float64()*0.05, lo[1] + rng.Float64()*0.05}
		r, err := rstar.NewRect(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		rects[i] = r
		tr.Insert(r, int64(i))
	}
	for _, idx := range rng.Perm(n)[:n/2] {
		if !tr.Delete(rects[idx], int64(idx)) {
			t.Fatalf("Delete(%d) not found", idx)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	if tr.Height() < 1 {
		t.Fatal("Height")
	}
}
