package dataset

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"walrus/internal/imgio"
)

// Category labels a scene type; it is the ground truth used to score
// retrieval quality.
type Category string

// The scene categories. Flowers, Bricks, Sunset, Ocean and LawnDog mirror
// image classes that appear in the paper's Figures 7 and 8 (red flowers on
// green leaves, an orange brick wall, a sunset over the ocean, a dog on a
// lawn); the rest add variety comparable to the misc dataset.
const (
	Flowers  Category = "flowers"
	Sunset   Category = "sunset"
	Bricks   Category = "bricks"
	Ocean    Category = "ocean"
	LawnDog  Category = "lawndog"
	Forest   Category = "forest"
	City     Category = "city"
	Snow     Category = "snow"
	Windsurf Category = "windsurf"
	Portrait Category = "portrait"
	Beach    Category = "beach"
	Mountain Category = "mountain"
)

// Categories lists every category in a fixed order.
func Categories() []Category {
	return []Category{Flowers, Sunset, Bricks, Ocean, LawnDog, Forest, City, Snow, Windsurf, Portrait, Beach, Mountain}
}

// Item is one generated image with its ground-truth label.
type Item struct {
	ID       string
	Category Category
	Image    *imgio.Image
}

// Dataset is a generated image collection.
type Dataset struct {
	Items []Item
}

// Options configures generation.
type Options struct {
	// Seed makes generation deterministic.
	Seed int64
	// PerCategory is the number of images generated per category.
	PerCategory int
	// Sizes are the (width, height) shapes images are drawn in, cycled per
	// image. Default mirrors the misc dataset's 128×85 / 85×128 / 96×128
	// shapes, padded up to fit a 64-pixel window in both axes.
	Sizes [][2]int
	// Categories restricts generation to these categories (nil = all).
	Categories []Category
}

// DefaultOptions generates 100 images per category at sizes that keep the
// paper's aspect ratios while fitting the default 64-pixel window.
func DefaultOptions() Options {
	return Options{
		Seed:        1999, // the paper's year; any fixed seed works
		PerCategory: 100,
		Sizes:       [][2]int{{128, 85}, {85, 128}, {96, 128}},
	}
}

// Generate builds a dataset.
func Generate(opts Options) (*Dataset, error) {
	if opts.PerCategory < 1 {
		return nil, fmt.Errorf("dataset: PerCategory %d < 1", opts.PerCategory)
	}
	if len(opts.Sizes) == 0 {
		opts.Sizes = DefaultOptions().Sizes
	}
	for _, s := range opts.Sizes {
		if s[0] < 16 || s[1] < 16 {
			return nil, fmt.Errorf("dataset: size %dx%d too small", s[0], s[1])
		}
	}
	cats := opts.Categories
	if len(cats) == 0 {
		cats = Categories()
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var items []Item
	for _, cat := range cats {
		for i := 0; i < opts.PerCategory; i++ {
			size := opts.Sizes[(i+len(items))%len(opts.Sizes)]
			im := Render(cat, rng, size[0], size[1])
			items = append(items, Item{
				ID:       fmt.Sprintf("%s-%04d", cat, i),
				Category: cat,
				Image:    im,
			})
		}
	}
	return &Dataset{Items: items}, nil
}

// ByCategory returns the items with the given label.
func (d *Dataset) ByCategory(c Category) []Item {
	var out []Item
	for _, it := range d.Items {
		if it.Category == c {
			out = append(out, it)
		}
	}
	return out
}

// Find returns the item with the given id.
func (d *Dataset) Find(id string) (Item, bool) {
	for _, it := range d.Items {
		if it.ID == id {
			return it, true
		}
	}
	return Item{}, false
}

// CategoryOf maps a generated id back to its category label ("flowers-0042"
// → flowers). It works on ids produced by Generate.
func CategoryOf(id string) Category {
	if i := strings.LastIndex(id, "-"); i > 0 {
		return Category(id[:i])
	}
	return Category(id)
}

// Render draws one image of the given category. The rng drives all
// randomized placement, scale and color jitter.
func Render(cat Category, rng *rand.Rand, w, h int) *imgio.Image {
	im := imgio.New(w, h, 3)
	fw, fh := float64(w), float64(h)
	switch cat {
	case Flowers:
		// Backgrounds vary widely between flower photos (sunlit foliage,
		// shade, dark undergrowth), as they do in the misc dataset: this
		// intra-category diversity is what defeats whole-image signatures
		// while region signatures still match the flowers themselves.
		backgrounds := []rgb{
			{0.16, 0.5, 0.18},  // sunlit foliage
			{0.08, 0.3, 0.1},   // deep shade
			{0.25, 0.42, 0.15}, // olive brush
			{0.05, 0.15, 0.08}, // near-dark undergrowth
		}
		fill(im, backgrounds[rng.Intn(len(backgrounds))].jitter(rng, 0.06))
		texture(im, rng, 0.05)
		// Dark leaf blobs.
		for i := 0; i < rng.Intn(8); i++ {
			ellipse(im, rng.Float64()*fw, rng.Float64()*fh,
				8+rng.Float64()*14, 5+rng.Float64()*8, rgb{0.1, 0.38, 0.12}.jitter(rng, 0.04))
		}
		// Flowers: randomized count, position and size; red or pink.
		petal := rgb{0.85, 0.1, 0.12}
		if rng.Intn(3) == 0 {
			petal = rgb{0.92, 0.45, 0.6} // pink
		}
		for i := 0; i < 2+rng.Intn(5); i++ {
			size := 10 + rng.Float64()*16
			flower(im, rng, size+rng.Float64()*(fw-2*size), size+rng.Float64()*(fh-2*size), size, petal)
		}
	case Sunset:
		horizon := int(fh * (0.45 + rng.Float64()*0.2))
		vGradient(im, 0, horizon, rgb{0.95, 0.55, 0.15}.jitter(rng, 0.05), rgb{0.75, 0.2, 0.25}.jitter(rng, 0.05))
		vGradient(im, horizon, h, rgb{0.35, 0.12, 0.2}, rgb{0.12, 0.06, 0.15})
		// Sun disk near the horizon, position and size vary.
		disk(im, fw*(0.25+rng.Float64()*0.5), float64(horizon)-rng.Float64()*fh*0.1,
			6+rng.Float64()*10, rgb{1, 0.85, 0.4})
		texture(im, rng, 0.02)
	case Bricks:
		mortar := rgb{0.75, 0.7, 0.62}
		fill(im, mortar)
		bh := 8 + rng.Intn(6)
		bw := bh * 2
		base := rgb{0.7, 0.32, 0.18}
		if rng.Intn(3) == 0 {
			base = rgb{0.45, 0.25, 0.2} // dark brown wall
		}
		for row, y := 0, 0; y < h; row, y = row+1, y+bh+2 {
			off := 0
			if row%2 == 1 {
				off = -bw / 2
			}
			for x := off; x < w; x += bw + 2 {
				rect(im, x, y, x+bw, y+bh, base.jitter(rng, 0.07))
			}
		}
		texture(im, rng, 0.03)
	case Ocean:
		vGradient(im, 0, h, rgb{0.1, 0.3, 0.6}.jitter(rng, 0.05), rgb{0.05, 0.15, 0.4})
		// Wave streaks.
		for i := 0; i < 12+rng.Intn(12); i++ {
			y := rng.Intn(h)
			x0 := rng.Intn(w)
			rect(im, x0, y, x0+10+rng.Intn(30), y+1, rgb{0.5, 0.7, 0.9})
		}
		texture(im, rng, 0.03)
	case LawnDog:
		// A mowed lawn: yellower green than flower foliage, with light
		// horizontal mowing stripes.
		fill(im, rgb{0.45, 0.62, 0.15}.jitter(rng, 0.04))
		stripe := 8 + rng.Intn(6)
		for y := 0; y < h; y += 2 * stripe {
			rect(im, 0, y, w, y+stripe, rgb{0.52, 0.7, 0.2}.jitter(rng, 0.03))
		}
		texture(im, rng, 0.05)
		// Dog: tan body ellipse plus head disk, varied placement/size.
		scale := 0.6 + rng.Float64()*0.8
		cx := fw * (0.25 + rng.Float64()*0.5)
		cy := fh * (0.4 + rng.Float64()*0.3)
		body := rgb{0.8, 0.65, 0.35}.jitter(rng, 0.05)
		ellipse(im, cx, cy, 18*scale, 10*scale, body)
		disk(im, cx+20*scale, cy-8*scale, 7*scale, body.jitter(rng, 0.05))
	case Forest:
		fill(im, rgb{0.1, 0.3, 0.12}.jitter(rng, 0.07))
		texture(im, rng, 0.06)
		for x := rng.Intn(10); x < w; x += 14 + rng.Intn(14) {
			tw := 3 + rng.Intn(5)
			rect(im, x, 0, x+tw, h, rgb{0.3, 0.2, 0.1}.jitter(rng, 0.05))
		}
	case City:
		vGradient(im, 0, h, rgb{0.55, 0.7, 0.9}.jitter(rng, 0.06), rgb{0.7, 0.8, 0.95}.jitter(rng, 0.04))
		for x := 0; x < w; x += 10 + rng.Intn(16) {
			bw := 10 + rng.Intn(18)
			bh := int(fh * (0.3 + rng.Float64()*0.55))
			shade := 0.25 + rng.Float64()*0.3
			rect(im, x, h-bh, x+bw, h, rgb{shade, shade, shade + 0.05})
		}
		texture(im, rng, 0.02)
	case Snow:
		fill(im, rgb{0.88, 0.9, 0.94}.jitter(rng, 0.05))
		texture(im, rng, 0.03)
		for i := 0; i < 2+rng.Intn(4); i++ {
			shade := 0.35 + rng.Float64()*0.2
			ellipse(im, rng.Float64()*fw, fh*(0.5+rng.Float64()*0.4),
				8+rng.Float64()*18, 5+rng.Float64()*10, rgb{shade, shade, shade})
		}
	case Windsurf:
		vGradient(im, 0, h, rgb{0.15, 0.4, 0.7}.jitter(rng, 0.08), rgb{0.05, 0.2, 0.5}.jitter(rng, 0.05))
		texture(im, rng, 0.03)
		// Board and red sail, the cameo of Figure 8(m).
		scale := 0.6 + rng.Float64()*0.8
		cx := fw * (0.3 + rng.Float64()*0.4)
		cy := fh * (0.55 + rng.Float64()*0.2)
		rect(im, int(cx-16*scale), int(cy), int(cx+16*scale), int(cy+4*scale), rgb{0.9, 0.9, 0.85})
		triangle(im, cx, cy, cx, cy-40*scale, cx+24*scale, cy-8*scale, rgb{0.85, 0.1, 0.1})
	case Beach:
		// Sky over sea over sand, with a parasol dot or two.
		skyline := int(fh * (0.25 + rng.Float64()*0.15))
		waterline := int(fh * (0.55 + rng.Float64()*0.15))
		vGradient(im, 0, skyline, rgb{0.55, 0.75, 0.95}.jitter(rng, 0.05), rgb{0.65, 0.82, 0.96}.jitter(rng, 0.04))
		vGradient(im, skyline, waterline, rgb{0.1, 0.45, 0.7}.jitter(rng, 0.05), rgb{0.15, 0.55, 0.75})
		vGradient(im, waterline, h, rgb{0.9, 0.8, 0.55}.jitter(rng, 0.05), rgb{0.85, 0.72, 0.45})
		for i := 0; i < rng.Intn(3); i++ {
			scale := 0.6 + rng.Float64()*0.8
			cx := fw * rng.Float64()
			cy := float64(waterline) + (fh-float64(waterline))*rng.Float64()*0.8
			disk(im, cx, cy, 5*scale, rgb{0.9, 0.15, 0.15}.jitter(rng, 0.1))
			rect(im, int(cx), int(cy), int(cx)+1, int(cy+12*scale), rgb{0.4, 0.3, 0.2})
		}
		texture(im, rng, 0.03)
	case Mountain:
		// Sky, a jagged gray ridge with snow caps, dark foothills.
		vGradient(im, 0, h, rgb{0.6, 0.75, 0.92}.jitter(rng, 0.06), rgb{0.75, 0.85, 0.95})
		base := int(fh * (0.75 + rng.Float64()*0.15))
		for p := 0; p < 2+rng.Intn(3); p++ {
			peakX := fw * rng.Float64()
			peakY := fh * (0.15 + rng.Float64()*0.25)
			half := fw * (0.2 + rng.Float64()*0.25)
			shade := 0.35 + rng.Float64()*0.15
			triangle(im, peakX-half, float64(base), peakX, peakY, peakX+half, float64(base),
				rgb{shade, shade, shade + 0.03})
			// Snow cap.
			triangle(im, peakX-half*0.25, peakY+(float64(base)-peakY)*0.25, peakX, peakY,
				peakX+half*0.25, peakY+(float64(base)-peakY)*0.25, rgb{0.95, 0.95, 0.97})
		}
		rect(im, 0, base, w, h, rgb{0.2, 0.3, 0.15}.jitter(rng, 0.05))
		texture(im, rng, 0.04)
	case Portrait:
		bg := rgb{rng.Float64() * 0.6, rng.Float64() * 0.6, 0.3 + rng.Float64()*0.5}
		fill(im, bg)
		texture(im, rng, 0.03)
		scale := 0.7 + rng.Float64()*0.6
		cx := fw * (0.35 + rng.Float64()*0.3)
		cy := fh * (0.35 + rng.Float64()*0.2)
		skin := rgb{0.85, 0.65, 0.5}.jitter(rng, 0.06)
		ellipse(im, cx, cy, 14*scale, 18*scale, skin)                                            // face
		ellipse(im, cx, cy-14*scale, 15*scale, 8*scale, rgb{0.2, 0.15, 0.1})                     // hair
		rect(im, int(cx-18*scale), int(cy+20*scale), int(cx+18*scale), h, skin.jitter(rng, 0.2)) // torso
	default:
		fill(im, rgb{0.5, 0.5, 0.5})
	}
	return im
}

// Save writes every image as a binary PPM into dir, plus a labels.tsv file
// mapping ids to categories.
func (d *Dataset) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var labels strings.Builder
	for _, it := range d.Items {
		f, err := os.Create(filepath.Join(dir, it.ID+".ppm"))
		if err != nil {
			return err
		}
		if err := imgio.EncodePPM(f, it.Image); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(&labels, "%s\t%s\n", it.ID, it.Category)
	}
	return os.WriteFile(filepath.Join(dir, "labels.tsv"), []byte(labels.String()), 0o644)
}

// Load reads a dataset saved by Save.
func Load(dir string) (*Dataset, error) {
	data, err := os.ReadFile(filepath.Join(dir, "labels.tsv"))
	if err != nil {
		return nil, fmt.Errorf("dataset: reading labels: %w", err)
	}
	var d Dataset
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 2 {
			return nil, fmt.Errorf("dataset: malformed label line %q", line)
		}
		f, err := os.Open(filepath.Join(dir, parts[0]+".ppm"))
		if err != nil {
			return nil, err
		}
		im, err := imgio.DecodePPM(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("dataset: decoding %s: %w", parts[0], err)
		}
		d.Items = append(d.Items, Item{ID: parts[0], Category: Category(parts[1]), Image: im})
	}
	sort.Slice(d.Items, func(i, j int) bool { return d.Items[i].ID < d.Items[j].ID })
	return &d, nil
}
