// Package dataset generates the synthetic labeled image collection that
// stands in for the paper's misc dataset (10,000 JPEGs downloaded from
// VIRAGE, not redistributable). Images are parametric scenes drawn from a
// fixed set of semantic categories; object positions and sizes are
// randomized per image, which reproduces exactly the translation/scaling
// variation that WALRUS's region-granularity matching is designed to
// handle and whole-image signatures are not. Every image carries its
// category as ground truth, so retrieval precision is measurable.
package dataset

import (
	"math"
	"math/rand"

	"walrus/internal/imgio"
)

// rgb is a convenience color triple.
type rgb struct{ r, g, b float64 }

func (c rgb) jitter(rng *rand.Rand, amp float64) rgb {
	return rgb{
		clamp01(c.r + (rng.Float64()*2-1)*amp),
		clamp01(c.g + (rng.Float64()*2-1)*amp),
		clamp01(c.b + (rng.Float64()*2-1)*amp),
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// fill paints the whole image one color.
func fill(im *imgio.Image, c rgb) {
	im.FillRGB(c.r, c.g, c.b)
}

// vGradient paints a vertical gradient from top color to bottom color over
// rows [y0, y1).
func vGradient(im *imgio.Image, y0, y1 int, top, bottom rgb) {
	if y1 <= y0 {
		return
	}
	for y := y0; y < y1 && y < im.H; y++ {
		if y < 0 {
			continue
		}
		t := float64(y-y0) / float64(y1-y0)
		r := top.r + (bottom.r-top.r)*t
		g := top.g + (bottom.g-top.g)*t
		b := top.b + (bottom.b-top.b)*t
		for x := 0; x < im.W; x++ {
			im.SetRGB(x, y, r, g, b)
		}
	}
}

// disk paints a filled circle.
func disk(im *imgio.Image, cx, cy, radius float64, c rgb) {
	x0, x1 := int(cx-radius)-1, int(cx+radius)+1
	y0, y1 := int(cy-radius)-1, int(cy+radius)+1
	r2 := radius * radius
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			if dx*dx+dy*dy <= r2 {
				im.SetRGB(x, y, c.r, c.g, c.b)
			}
		}
	}
}

// ellipse paints a filled axis-aligned ellipse.
func ellipse(im *imgio.Image, cx, cy, rx, ry float64, c rgb) {
	x0, x1 := int(cx-rx)-1, int(cx+rx)+1
	y0, y1 := int(cy-ry)-1, int(cy+ry)+1
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx, dy := (float64(x)-cx)/rx, (float64(y)-cy)/ry
			if dx*dx+dy*dy <= 1 {
				im.SetRGB(x, y, c.r, c.g, c.b)
			}
		}
	}
}

// rect paints a filled rectangle [x0,x1) x [y0,y1), clipped.
func rect(im *imgio.Image, x0, y0, x1, y1 int, c rgb) {
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			im.SetRGB(x, y, c.r, c.g, c.b)
		}
	}
}

// triangle paints a filled triangle via sign tests.
func triangle(im *imgio.Image, x1, y1, x2, y2, x3, y3 float64, c rgb) {
	minX := int(math.Min(x1, math.Min(x2, x3)))
	maxX := int(math.Max(x1, math.Max(x2, x3))) + 1
	minY := int(math.Min(y1, math.Min(y2, y3)))
	maxY := int(math.Max(y1, math.Max(y2, y3))) + 1
	sign := func(ax, ay, bx, by, px, py float64) float64 {
		return (px-ax)*(by-ay) - (bx-ax)*(py-ay)
	}
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			px, py := float64(x), float64(y)
			d1 := sign(x1, y1, x2, y2, px, py)
			d2 := sign(x2, y2, x3, y3, px, py)
			d3 := sign(x3, y3, x1, y1, px, py)
			neg := d1 < 0 || d2 < 0 || d3 < 0
			pos := d1 > 0 || d2 > 0 || d3 > 0
			if !(neg && pos) {
				im.SetRGB(x, y, c.r, c.g, c.b)
			}
		}
	}
}

// texture perturbs every pixel by uniform noise of the given amplitude,
// keeping the scene's large-scale structure while adding natural-looking
// variation.
func texture(im *imgio.Image, rng *rand.Rand, amp float64) {
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			n := (rng.Float64()*2 - 1) * amp
			for c := 0; c < 3; c++ {
				im.Set(c, x, y, clamp01(im.At(c, x, y)+n))
			}
		}
	}
}

// flower draws a stylized flower: a ring of petal disks plus a center.
func flower(im *imgio.Image, rng *rand.Rand, cx, cy, size float64, petal rgb) {
	petals := 5 + rng.Intn(3)
	petalR := size * 0.45
	for i := 0; i < petals; i++ {
		ang := 2 * math.Pi * float64(i) / float64(petals)
		disk(im, cx+math.Cos(ang)*size*0.55, cy+math.Sin(ang)*size*0.55, petalR, petal.jitter(rng, 0.05))
	}
	disk(im, cx, cy, size*0.3, rgb{0.95, 0.85, 0.15})
}
