package dataset

import (
	"math/rand"
	"testing"

	"walrus/internal/imgio"
)

func TestGenerateDeterministic(t *testing.T) {
	opts := Options{Seed: 7, PerCategory: 2}
	a, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Items) != len(b.Items) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Items), len(b.Items))
	}
	for i := range a.Items {
		if a.Items[i].ID != b.Items[i].ID {
			t.Fatalf("ids differ at %d", i)
		}
		d, err := imgio.MeanAbsDiff(a.Items[i].Image, b.Items[i].Image)
		if err != nil || d != 0 {
			t.Fatalf("item %d not deterministic: %v %v", i, d, err)
		}
	}
}

func TestGenerateCoversCategoriesAndSizes(t *testing.T) {
	d, err := Generate(Options{Seed: 1, PerCategory: 3})
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * len(Categories()); len(d.Items) != want {
		t.Fatalf("generated %d items, want %d", len(d.Items), want)
	}
	sizes := DefaultOptions().Sizes
	for _, it := range d.Items {
		if err := it.Image.Validate(); err != nil {
			t.Fatalf("%s: %v", it.ID, err)
		}
		okSize := false
		for _, s := range sizes {
			if it.Image.W == s[0] && it.Image.H == s[1] {
				okSize = true
			}
		}
		if !okSize {
			t.Fatalf("%s has unexpected size %dx%d", it.ID, it.Image.W, it.Image.H)
		}
		for _, v := range it.Image.Pix {
			if v < 0 || v > 1 {
				t.Fatalf("%s has out-of-range sample %v", it.ID, v)
			}
		}
		if CategoryOf(it.ID) != it.Category {
			t.Fatalf("CategoryOf(%s) = %s, want %s", it.ID, CategoryOf(it.ID), it.Category)
		}
	}
	for _, c := range Categories() {
		if got := len(d.ByCategory(c)); got != 3 {
			t.Fatalf("category %s has %d items", c, got)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Options{PerCategory: 0}); err == nil {
		t.Error("accepted PerCategory 0")
	}
	if _, err := Generate(Options{PerCategory: 1, Sizes: [][2]int{{4, 4}}}); err == nil {
		t.Error("accepted tiny size")
	}
}

func TestGenerateRestrictedCategories(t *testing.T) {
	d, err := Generate(Options{Seed: 2, PerCategory: 2, Categories: []Category{Flowers, Ocean}})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Items) != 4 {
		t.Fatalf("%d items", len(d.Items))
	}
	if len(d.ByCategory(Bricks)) != 0 {
		t.Fatal("unexpected bricks")
	}
}

func TestFind(t *testing.T) {
	d, err := Generate(Options{Seed: 3, PerCategory: 1})
	if err != nil {
		t.Fatal(err)
	}
	it, ok := d.Find("flowers-0000")
	if !ok || it.Category != Flowers {
		t.Fatalf("Find = %+v, %v", it, ok)
	}
	if _, ok := d.Find("nope"); ok {
		t.Fatal("found nonexistent id")
	}
}

// TestCategoryVisualSeparation: mean colors of contrasting categories
// differ substantially, so retrieval has signal to work with.
func TestCategoryVisualSeparation(t *testing.T) {
	d, err := Generate(Options{Seed: 4, PerCategory: 5})
	if err != nil {
		t.Fatal(err)
	}
	meanChannel := func(cat Category, c int) float64 {
		items := d.ByCategory(cat)
		sum, n := 0.0, 0
		for _, it := range items {
			for _, v := range it.Image.Plane(c) {
				sum += v
				n++
			}
		}
		return sum / float64(n)
	}
	// Flowers are green-dominant, oceans blue-dominant, snow bright.
	if meanChannel(Flowers, 1) <= meanChannel(Flowers, 2) {
		t.Error("flowers not green-dominant")
	}
	if meanChannel(Ocean, 2) <= meanChannel(Ocean, 0) {
		t.Error("ocean not blue-dominant")
	}
	if meanChannel(Snow, 0) < 0.7 {
		t.Error("snow not bright")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d, err := Generate(Options{Seed: 5, PerCategory: 1, Categories: []Category{Flowers, Bricks}})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Items) != len(d.Items) {
		t.Fatalf("loaded %d items, want %d", len(back.Items), len(d.Items))
	}
	for _, it := range back.Items {
		orig, ok := d.Find(it.ID)
		if !ok || orig.Category != it.Category {
			t.Fatalf("item %s category mismatch", it.ID)
		}
		diff, err := imgio.MeanAbsDiff(orig.Image, it.Image)
		if err != nil {
			t.Fatal(err)
		}
		// PPM is 8-bit, so round-tripping loses at most half a level.
		if diff > 1.0/255 {
			t.Fatalf("%s drifted by %v", it.ID, diff)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("Load succeeded on empty dir")
	}
}

func TestRenderUnknownCategory(t *testing.T) {
	im := Render(Category("mystery"), rand.New(rand.NewSource(1)), 64, 64)
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
}
