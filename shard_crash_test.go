package walrus

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"walrus/internal/crashfs"
	"walrus/internal/imgio"
	"walrus/internal/store"
)

// routedOpener injects faults only into files under one shard's
// directory; every other shard gets the real filesystem. This is how
// the crash matrix kills one shard's WAL mid-operation while the rest
// of the fleet keeps committing.
func routedOpener(in *crashfs.Injector, victim int) FileOpener {
	marker := shardDirName(victim) + string(os.PathSeparator)
	return func(path string, flag int) (store.File, error) {
		if strings.Contains(path, marker) {
			return in.Open(path, flag)
		}
		return os.OpenFile(path, flag, 0o644)
	}
}

// idsHashingTo returns count ids with the given prefix that shardOf
// routes to shard k out of n.
func idsHashingTo(t *testing.T, n, k, count int, prefix string) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < count; i++ {
		if i > 100000 {
			t.Fatalf("no ids with prefix %q hash to shard %d/%d", prefix, k, n)
		}
		id := fmt.Sprintf("%s-%03d", prefix, i)
		if shardOf(id, n) == k {
			out = append(out, id)
		}
	}
	return out
}

// shardCrashOp is one step of the sharded crash workload.
type shardCrashOp struct {
	name string
	// victim marks ops whose commit touches the victim shard; ops
	// without it must keep succeeding after the victim is killed.
	victim bool
	run    func(s *Sharded) error
}

// shardCrashScript builds the workload: single-shard adds and removes
// on and off the victim, one cross-shard AddBatch, and a fleet flush.
func shardCrashScript(t *testing.T, nShards, victim int) []shardCrashOp {
	t.Helper()
	v := idsHashingTo(t, nShards, victim, 4, "v")
	h0 := idsHashingTo(t, nShards, 0, 3, "h")
	h2 := idsHashingTo(t, nShards, 2, 3, "k")
	im := func(i int) *imgio.Image { return scene(green, red, (i*9)%70, (i*13)%70, 40) }
	add := func(id string, i int, victimTouch bool) shardCrashOp {
		image := im(i)
		return shardCrashOp{"add " + id, victimTouch, func(s *Sharded) error {
			return s.Add(id, image)
		}}
	}
	batch := []BatchItem{
		{ID: h0[1], Image: im(10)},
		{ID: v[1], Image: im(11)},
		{ID: h2[1], Image: im(12)},
	}
	return []shardCrashOp{
		add(v[0], 0, true),
		add(h0[0], 1, false),
		add(h2[0], 2, false),
		{"cross-shard batch", true, func(s *Sharded) error { return s.AddBatch(batch, 0) }},
		{"remove " + v[0], true, func(s *Sharded) error {
			_, err := s.Remove(v[0])
			return err
		}},
		add(v[2], 3, true),
		add(h0[2], 4, false),
		{"flush", true, func(s *Sharded) error { return s.Flush() }},
		add(v[3], 5, true),
		add(h2[2], 6, false),
	}
}

// shardCrashOracle runs the script cleanly and returns
// states[opCount][shard] — each shard's logical fingerprint after the
// first opCount operations.
func shardCrashOracle(t *testing.T, o Options, ops []shardCrashOp) [][]string {
	t.Helper()
	s, err := CreateSharded(t.TempDir(), o)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	snap := func() []string {
		per := make([]string, len(s.shards))
		for k, sh := range s.shards {
			per[k] = crashSnapshot(t, sh)
		}
		return per
	}
	states := [][]string{snap()}
	for _, op := range ops {
		if err := op.run(s); err != nil {
			t.Fatalf("oracle %s: %v", op.name, err)
		}
		states = append(states, snap())
	}
	return states
}

// TestShardCrashVictimWAL is the sharded crash matrix: kill points are
// enumerated over one shard's WAL and page file while the rest of the
// fleet keeps committing. After each kill the whole directory is
// reopened with OpenShardedFS (per-shard replay) and the matrix asserts:
//
//   - every healthy shard holds exactly its full workload — ops routed
//     to healthy shards must keep succeeding after the victim dies,
//     including their sub-batches of the cross-shard AddBatch;
//   - the victim recovers to its own consistent version: precisely the
//     state after its last successfully committed operation, or one
//     more (an op can commit durably, then die in post-commit work);
//   - no torn batch is visible anywhere: each shard's sub-batch of the
//     cross-shard AddBatch is all-or-nothing, because every allowed
//     recovery state is an op boundary of the per-shard oracle.
func TestShardCrashVictimWAL(t *testing.T) {
	const nShards = 3
	const victim = 1
	o := testOptions()
	o.Durability = DurabilityAlways
	o.Shards = nShards
	ops := shardCrashScript(t, nShards, victim)
	oracle := shardCrashOracle(t, o, ops)
	final := oracle[len(oracle)-1]

	// Global op indices of the victim-touching subsequence: allowed
	// recovery states are expressed in completed victim ops.
	var victimOps []int
	for i, op := range ops {
		if op.victim {
			victimOps = append(victimOps, i)
		}
	}

	// runScript drives the workload on a killable fleet. Once the kill
	// point fires, victim-touching ops may fail with the injected error
	// or any follow-on error of the dead shard; healthy-only ops must
	// keep succeeding regardless. Returns the number of victim-touching
	// ops committed before the kill (an op that returns nil committed
	// durably under DurabilityAlways even if the kill hit its post-commit
	// work).
	runScript := func(s *Sharded, in *crashfs.Injector) int {
		t.Helper()
		victimDone := 0
		for _, op := range ops {
			wasKilled := in.Killed()
			err := op.run(s)
			switch {
			case err == nil:
				if op.victim && !wasKilled {
					victimDone++
				}
			case !in.Killed():
				t.Fatalf("op %s failed before any injected kill: %v", op.name, err)
			case !op.victim:
				t.Fatalf("healthy-only op %s failed after the victim kill: %v", op.name, err)
			case !errors.Is(err, crashfs.ErrKilled) && !wasKilled:
				t.Fatalf("op %s at the kill point failed with a non-injected error: %v", op.name, err)
			}
		}
		return victimDone
	}

	// Dry run through the routed injector (never armed) to size the
	// matrix in victim file operations.
	probe := crashfs.New()
	{
		po := o
		po.FS = routedOpener(probe, victim)
		s, err := CreateSharded(t.TempDir(), po)
		if err != nil {
			t.Fatal(err)
		}
		probe.Arm(0, -1)
		if got := runScript(s, probe); got != len(victimOps) {
			t.Fatalf("dry run completed %d/%d victim ops", got, len(victimOps))
		}
		s.Close()
	}
	total := probe.Ops()
	if total < int64(len(victimOps)) {
		t.Fatalf("implausible victim op count %d", total)
	}

	budget := int64(12)
	if testing.Short() {
		budget = 6
	}
	stride := total / budget
	if stride < 1 {
		stride = 1
	}
	killed, replays := 0, 0
	for kill := int64(1); kill <= total; kill += stride {
		tear := -1
		if kill%2 == 0 {
			tear = 8
		}
		in := crashfs.New()
		dir := t.TempDir()
		ko := o
		ko.FS = routedOpener(in, victim)
		s, err := CreateSharded(dir, ko)
		if err != nil {
			t.Fatalf("kill=%d: CreateSharded before arming: %v", kill, err)
		}
		in.Arm(kill, tear)
		victimDone := runScript(s, in)
		s.Close() // victim close errors are expected; release descriptors
		if !in.Killed() {
			continue
		}
		killed++
		in.Arm(0, -1) // disarm: recovery sees the crashed disk image

		re, err := OpenShardedFS(dir, ko.FS)
		if err != nil {
			t.Fatalf("kill=%d tear=%d after %d victim ops: recovery failed: %v", kill, tear, victimDone, err)
		}
		rs, ok := re.Recovery()
		if !ok || len(rs) != nShards {
			t.Fatalf("kill=%d: Recovery() = (%d reports, %v)", kill, len(rs), ok)
		}
		if rs[victim].Replayed {
			replays++
		}
		for k := 0; k < nShards; k++ {
			got := crashSnapshot(t, re.shards[k])
			if k != victim {
				if got != final[k] {
					t.Fatalf("kill=%d: healthy shard %d lost committed work (victim ops done: %d)", kill, k, victimDone)
				}
				continue
			}
			// The victim must land exactly on its own op boundary:
			// after victimDone committed ops, or one further.
			allowed := []string{}
			if victimDone == 0 {
				allowed = append(allowed, oracle[0][victim])
			} else {
				allowed = append(allowed, oracle[victimOps[victimDone-1]+1][victim])
			}
			if victimDone < len(victimOps) {
				allowed = append(allowed, oracle[victimOps[victimDone]+1][victim])
			}
			match := false
			for _, want := range allowed {
				if got == want {
					match = true
					break
				}
			}
			if !match {
				t.Fatalf("kill=%d tear=%d: victim shard recovered to a state that is no op boundary (victim ops done: %d)",
					kill, tear, victimDone)
			}
		}
		re.Close()
	}
	if killed < 2 {
		t.Fatalf("sharded crash matrix exercised only %d kill points (total victim ops %d)", killed, total)
	}
	if replays < 1 {
		t.Fatalf("no kill point drove the victim through WAL replay (%d kills)", killed)
	}
	t.Logf("sharded crash matrix: %d kill points over %d victim file ops, stride %d, %d WAL replays",
		killed, total, stride, replays)
}
