package walrus

import (
	"fmt"
	"time"

	"walrus/internal/imgio"
	"walrus/internal/obs"
	"walrus/internal/parallel"
	"walrus/internal/region"
)

// BatchItem is one image to index in AddBatch.
type BatchItem struct {
	ID    string
	Image *imgio.Image
}

// AddBatch indexes many images, running the expensive region extraction on
// up to workers goroutines (0 = the database's Parallelism option, itself
// defaulting to GOMAXPROCS) while keeping index insertion ordered and
// serialized — the resulting database is identical for every worker
// count. The whole batch is published as a single catalog version, so
// concurrent readers observe either none or all of its images (unless it
// fails partway: it stops at the first error, and items before the
// failing one remain indexed).
func (db *DB) AddBatch(items []BatchItem, workers int) error {
	regions, errs := db.extractAll(items, workers)
	db.mu.Lock()
	defer db.mu.Unlock()
	defer db.publishLocked()
	for i, it := range items {
		if errs[i] != nil {
			return fmt.Errorf("walrus: extracting regions of %q: %w", it.ID, errs[i])
		}
		if err := db.addExtractedLocked(it.ID, it.Image, regions[i]); err != nil {
			return err
		}
	}
	return nil
}

// extractAll runs region extraction for every item on the resolved worker
// pool and returns the per-item region sets and errors in item order.
func (db *DB) extractAll(items []BatchItem, workers int) ([][]region.Region, []error) {
	extracted := make([][]region.Region, len(items))
	errs := make([]error, len(items))
	parallel.For(len(items), db.ingestWorkers(workers), func(i int) {
		extracted[i], errs[i] = db.ext.Extract(items[i].Image)
	})
	return extracted, errs
}

// addExtractedLocked is Add's insertion half, reused by AddBatch. Caller
// holds db.mu exclusively and publishes after the last insertion.
func (db *DB) addExtractedLocked(id string, im *imgio.Image, regions []region.Region) error {
	m := db.om.Load()
	var start time.Time
	if m != nil {
		start = statsClock()
	}
	if _, dup := db.byID[id]; dup {
		return fmt.Errorf("walrus: image %q %w", id, ErrDuplicateID)
	}
	imgIdx := len(db.images)
	// Appends extend the catalog past any published length, which never
	// moves published elements; only the id map needs copy-on-write.
	db.images = append(db.images, imageRecord{ID: id, W: im.W, H: im.H, Regions: regions})
	db.mutableByIDLocked()[id] = imgIdx
	var rids []uint64
	for local, r := range regions {
		payload := int64(len(db.refs))
		ref := regionRef{Image: imgIdx, Local: local}
		if db.persist != nil {
			rec, err := r.MarshalBinary()
			if err != nil {
				return fmt.Errorf("walrus: encoding region of %q: %w", id, err)
			}
			rid, err := db.persist.heap.Insert(rec)
			if err != nil {
				return fmt.Errorf("walrus: storing region of %q: %w", id, err)
			}
			ref.RID = rid.Pack()
			rids = append(rids, ref.RID)
		}
		db.refs = append(db.refs, ref)
		db.bsigs = append(db.bsigs, makeBinSig(r.Signature))
		if err := db.tree.Insert(signatureRect(db.opts.UseBBox, r), payload); err != nil {
			return fmt.Errorf("walrus: indexing region of %q: %w", id, err)
		}
	}
	db.liveRegions += len(regions)
	if db.persist != nil {
		if err := db.commitLocked(&walDelta{Op: deltaAdd, ID: id, W: im.W, H: im.H, RIDs: rids}); err != nil {
			return err
		}
	}
	if m != nil {
		d := statsSince(start)
		m.ingests.Inc()
		m.ingestRegions.Add(uint64(len(regions)))
		m.ingestSeconds.Observe(d.Seconds())
		m.images.Set(int64(len(db.byID)))
		m.regions.Add(int64(len(regions)))
		m.reg.RecordSpan("ingest", 0, start, d,
			obs.Attr{Key: "regions", Value: int64(len(regions))})
	}
	return nil
}

// Stats summarizes database state.
type Stats struct {
	// Images is the number of indexed images; Regions the number of live
	// regions.
	Images, Regions int
	// IndexHeight is the R*-tree height (1 = the root is a leaf).
	IndexHeight int
	// SignatureDim is the dimensionality of indexed region signatures.
	SignatureDim int
	// DiskBacked reports whether the database persists to a directory.
	DiskBacked bool
}

// Stats returns a snapshot of database statistics.
func (db *DB) Stats() Stats {
	core := db.cur.Load()
	return Stats{
		Images:       len(core.byID),
		Regions:      core.liveRegions,
		IndexHeight:  core.height,
		SignatureDim: core.opts.Region.Dim(),
		DiskBacked:   core.diskBacked,
	}
}
