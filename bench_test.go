// Benchmarks regenerating the measurements behind every table and figure
// of the paper's evaluation (Section 6). Run with:
//
//	go test -bench=. -benchmem
//
// Figure 6(a)/(b): naive vs dynamic-programming sliding-window signature
// computation; Table 1: query cost as epsilon grows; Figures 7/8: query
// cost of the WBIIS baseline vs WALRUS; plus ablation benches for the
// design choices called out in DESIGN.md (matcher algorithm, slide step,
// node store, color space).
package walrus_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"walrus"
	"walrus/internal/colorspace"
	"walrus/internal/dataset"
	"walrus/internal/experiments"
	"walrus/internal/match"
	"walrus/internal/region"
	"walrus/internal/rstar"
	"walrus/internal/wavelet"
	"walrus/internal/wbiis"
)

// benchPlane is the 256×256 image of the paper's Figure 6 setup.
var benchPlane = func() []float64 {
	rng := rand.New(rand.NewSource(42))
	p := make([]float64, 256*256)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}()

// BenchmarkFig6aDP measures the dynamic programming algorithm as the
// window size grows (Figure 6(a), DP series): 256×256 image, 2×2
// signatures, slide 1.
func BenchmarkFig6aDP(b *testing.B) {
	for win := 2; win <= 128; win *= 2 {
		b.Run(fmt.Sprintf("window=%d", win), func(b *testing.B) {
			params := wavelet.SlidingParams{MaxWindow: win, Signature: 2, Step: 1}
			for i := 0; i < b.N; i++ {
				if _, err := wavelet.ComputeSlidingWindows(benchPlane, 256, 256, params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6aNaive is Figure 6(a)'s naive series: each point computes
// only the windows of that size, the literal naive scheme.
func BenchmarkFig6aNaive(b *testing.B) {
	for win := 2; win <= 128; win *= 2 {
		b.Run(fmt.Sprintf("window=%d", win), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wavelet.NaiveWindowSignatures(benchPlane, 256, 256, win, 2, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6bDP measures the DP algorithm as the signature size grows
// (Figure 6(b)): 256×256 image, 128×128 windows.
func BenchmarkFig6bDP(b *testing.B) {
	for sig := 2; sig <= 32; sig *= 2 {
		b.Run(fmt.Sprintf("signature=%d", sig), func(b *testing.B) {
			params := wavelet.SlidingParams{MaxWindow: 128, Signature: sig, Step: 1}
			for i := 0; i < b.N; i++ {
				if _, err := wavelet.ComputeSlidingWindows(benchPlane, 256, 256, params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6bNaive is Figure 6(b)'s naive series (roughly flat in the
// signature size, as in the paper).
func BenchmarkFig6bNaive(b *testing.B) {
	for sig := 2; sig <= 32; sig *= 2 {
		b.Run(fmt.Sprintf("signature=%d", sig), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wavelet.NaiveWindowSignatures(benchPlane, 256, 256, 128, sig, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Shared retrieval fixtures (built once; benchmarks are read-only).

var (
	fixtureOnce sync.Once
	fixtureDS   *dataset.Dataset
	fixtureDB   *walrus.DB
	fixtureErr  error
)

func retrievalFixture(b *testing.B) (*dataset.Dataset, *walrus.DB) {
	b.Helper()
	fixtureOnce.Do(func() {
		opts := dataset.DefaultOptions()
		opts.PerCategory = 10
		fixtureDS, fixtureErr = dataset.Generate(opts)
		if fixtureErr != nil {
			return
		}
		cfg := experiments.PaperWalrusConfig()
		fixtureDB, fixtureErr = experiments.BuildWalrusDB(fixtureDS, cfg.Options)
	})
	if fixtureErr != nil {
		b.Fatal(fixtureErr)
	}
	return fixtureDS, fixtureDB
}

// BenchmarkTable1Query measures query cost at each of Table 1's epsilons
// (response time, the paper's first column).
func BenchmarkTable1Query(b *testing.B) {
	ds, db := retrievalFixture(b)
	query := ds.ByCategory(dataset.Flowers)[0]
	for _, eps := range []float64{0.05, 0.06, 0.07, 0.08, 0.09} {
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			p := walrus.DefaultQueryParams()
			p.Epsilon = eps
			for i := 0; i < b.N; i++ {
				if _, _, err := db.Query(query.Image, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8WalrusQuery is the per-query cost behind Figure 8.
func BenchmarkFig8WalrusQuery(b *testing.B) {
	ds, db := retrievalFixture(b)
	query := ds.ByCategory(dataset.Flowers)[0]
	p := walrus.DefaultQueryParams()
	p.Limit = 14
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Query(query.Image, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7WBIISQuery is the per-query cost behind Figure 7.
func BenchmarkFig7WBIISQuery(b *testing.B) {
	ds, _ := retrievalFixture(b)
	ix, err := wbiis.New(wbiis.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, it := range ds.Items {
		if err := ix.Add(it.ID, it.Image); err != nil {
			b.Fatal(err)
		}
	}
	query := ds.ByCategory(dataset.Flowers)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Query(query.Image, 14); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegionExtraction is the §6.6 cost: decomposing one image into
// regions (YCC vs RGB).
func BenchmarkRegionExtraction(b *testing.B) {
	ds, _ := retrievalFixture(b)
	img := ds.ByCategory(dataset.Flowers)[0].Image
	for _, space := range []colorspace.Space{colorspace.YCC, colorspace.RGB} {
		b.Run(space.String(), func(b *testing.B) {
			opts := region.DefaultOptions()
			opts.Space = space
			ext, err := region.NewExtractor(opts)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := ext.Extract(img); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatcherAblation compares the quick, greedy and exact image
// matchers on the same query (DESIGN.md ablation).
func BenchmarkMatcherAblation(b *testing.B) {
	ds, db := retrievalFixture(b)
	query := ds.ByCategory(dataset.Flowers)[0]
	for _, alg := range []match.Algorithm{match.Quick, match.Greedy, match.Exact, match.Assignment} {
		b.Run(alg.String(), func(b *testing.B) {
			p := walrus.DefaultQueryParams()
			p.Matcher = alg
			for i := 0; i < b.N; i++ {
				if _, _, err := db.Query(query.Image, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSlideStepAblation measures indexing cost as the slide step
// grows (DESIGN.md ablation: t trades indexing time for window density).
func BenchmarkSlideStepAblation(b *testing.B) {
	ds, _ := retrievalFixture(b)
	img := ds.ByCategory(dataset.Flowers)[0].Image
	for _, step := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("t=%d", step), func(b *testing.B) {
			opts := region.DefaultOptions()
			opts.Step = step
			ext, err := region.NewExtractor(opts)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := ext.Extract(img); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNodeStoreAblation compares R*-tree insert+search throughput on
// the in-memory vs the paged (disk) node store.
func BenchmarkNodeStoreAblation(b *testing.B) {
	const dim = 12
	makeRects := func(n int) []rstar.Rect {
		rng := rand.New(rand.NewSource(7))
		rects := make([]rstar.Rect, n)
		for i := range rects {
			p := make([]float64, dim)
			for j := range p {
				p[j] = rng.Float64()
			}
			rects[i] = rstar.Point(p)
		}
		return rects
	}
	rects := makeRects(2000)
	run := func(b *testing.B, mkStore func(b *testing.B) rstar.NodeStore) {
		for i := 0; i < b.N; i++ {
			tr, err := rstar.New(mkStore(b))
			if err != nil {
				b.Fatal(err)
			}
			for j, r := range rects {
				if err := tr.Insert(r, int64(j)); err != nil {
					b.Fatal(err)
				}
			}
			for j := 0; j < 100; j++ {
				if _, err := tr.SearchAll(rects[j].Expand(0.085)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("mem", func(b *testing.B) {
		run(b, func(b *testing.B) rstar.NodeStore {
			s, err := rstar.NewMemStore(dim, 16)
			if err != nil {
				b.Fatal(err)
			}
			return s
		})
	})
	b.Run("paged", func(b *testing.B) {
		run(b, func(b *testing.B) rstar.NodeStore {
			pg, err := newBenchPager(b)
			if err != nil {
				b.Fatal(err)
			}
			return pg
		})
	})
}

// BenchmarkIndexAdd measures end-to-end image indexing throughput.
func BenchmarkIndexAdd(b *testing.B) {
	ds, _ := retrievalFixture(b)
	imgs := ds.Items[:10]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := walrus.New(walrus.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, it := range imgs {
			if err := db.Add(it.ID, it.Image); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkIndexBackendAblation compares query throughput with the
// R*-tree vs the GiST rectangle tree as the region index.
func BenchmarkIndexBackendAblation(b *testing.B) {
	ds, _ := retrievalFixture(b)
	query := ds.ByCategory(dataset.Flowers)[0]
	for _, backend := range []walrus.IndexBackend{walrus.IndexRStar, walrus.IndexGiST} {
		b.Run(backend.String(), func(b *testing.B) {
			opts := experiments.PaperWalrusConfig().Options
			opts.Index = backend
			db, err := walrus.New(opts)
			if err != nil {
				b.Fatal(err)
			}
			for _, it := range ds.Items {
				if err := db.Add(it.ID, it.Image); err != nil {
					b.Fatal(err)
				}
			}
			p := walrus.DefaultQueryParams()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.Query(query.Image, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
