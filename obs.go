package walrus

import (
	"walrus/internal/obs"
	"walrus/internal/parallel"
	"walrus/internal/rstar"
)

// dbMetrics holds the DB's pre-resolved obs handles. One pointer load on
// the query path decides whether instrumentation runs at all; a nil
// pointer (observability off) costs a single atomic load and no clock
// reads beyond the ones QueryStats already pays for.
type dbMetrics struct {
	reg *obs.Registry

	queries          *obs.Counter
	queryRegions     *obs.Counter
	regionsRetrieved *obs.Counter
	candidates       *obs.Counter

	querySeconds   *obs.Histogram
	extractSeconds *obs.Histogram
	probeSeconds   *obs.Histogram
	scoreSeconds   *obs.Histogram

	ingests       *obs.Counter
	ingestRegions *obs.Counter
	ingestSeconds *obs.Histogram
	removes       *obs.Counter
	checkpoints   *obs.Counter

	images  *obs.Gauge
	regions *obs.Gauge

	snapshotVersion *obs.Gauge
	activeSnapshots *obs.Gauge
	snapshotsTotal  *obs.Counter
	publishes       *obs.Counter
	publishSeconds  *obs.Histogram
}

// SetMetrics attaches an observability registry to the database and every
// subsystem under it: query and ingest phase metrics publish alongside the
// buffer pool, pager, heap, WAL, R*-tree and worker-pool counters in one
// namespace. Passing nil detaches everything (the default state: with no
// registry the instrumentation is a nil fast path).
//
// The registry is attached at runtime rather than through Options because
// Options is gob-encoded into the on-disk catalog. Call SetMetrics after
// New, Create or Open; it is safe to call while readers run, but metrics
// recorded before the call are not retroactively created.
//
// The worker-pool gauges are process-global: when several databases share
// a process, the last SetMetrics call wins for walrus_pool_*.
func (db *DB) SetMetrics(reg *obs.Registry) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if t, ok := db.tree.(*rstar.Tree); ok {
		t.SetMetrics(reg)
	}
	if p := db.persist; p != nil {
		p.pool.SetMetrics(reg)
		p.pg.SetMetrics(reg)
		p.heap.SetMetrics(reg)
		p.wal.SetMetrics(reg)
	}
	parallel.SetMetrics(reg)
	if reg == nil {
		db.om.Store(nil)
		return
	}
	m := &dbMetrics{
		reg:              reg,
		queries:          reg.Counter("walrus_query_total", "Queries served."),
		queryRegions:     reg.Counter("walrus_query_regions_total", "Regions extracted from query images."),
		regionsRetrieved: reg.Counter("walrus_query_regions_retrieved_total", "Matching database regions retrieved by index probes."),
		candidates:       reg.Counter("walrus_query_candidates_total", "Candidate images scored by queries."),
		querySeconds:     reg.Histogram("walrus_query_seconds", "End-to-end query latency.", nil),
		extractSeconds:   reg.Histogram("walrus_query_extract_seconds", "Query region-extraction phase latency.", nil),
		probeSeconds:     reg.Histogram("walrus_query_probe_seconds", "Query index-probe phase latency.", nil),
		scoreSeconds:     reg.Histogram("walrus_query_score_seconds", "Query candidate-scoring phase latency.", nil),
		ingests:          reg.Counter("walrus_ingest_total", "Images ingested."),
		ingestRegions:    reg.Counter("walrus_ingest_regions_total", "Regions indexed by ingest."),
		ingestSeconds:    reg.Histogram("walrus_ingest_seconds", "Per-image catalog and index insertion latency (excludes region extraction).", nil),
		removes:          reg.Counter("walrus_removes_total", "Images removed."),
		checkpoints:      reg.Counter("walrus_checkpoints_total", "Checkpoints taken by the disk store."),
		images:           reg.Gauge("walrus_images", "Indexed images."),
		regions:          reg.Gauge("walrus_regions", "Live indexed regions."),
		snapshotVersion:  reg.Gauge("walrus_snapshot_version", "Currently published catalog version."),
		activeSnapshots:  reg.Gauge("walrus_snapshots_active", "Snapshots acquired and not yet released."),
		snapshotsTotal:   reg.Counter("walrus_snapshots_total", "Snapshots acquired."),
		publishes:        reg.Counter("walrus_publishes_total", "Catalog versions published by writers."),
		publishSeconds:   reg.Histogram("walrus_publish_seconds", "Latency of building and publishing one catalog version.", nil),
	}
	m.images.Set(int64(len(db.byID)))
	m.regions.Set(int64(db.liveRegions))
	if c := db.cur.Load(); c != nil {
		m.snapshotVersion.Set(int64(c.version))
	}
	if p := db.persist; p != nil {
		publishRecovery(reg, p.recovery)
	}
	db.om.Store(m)
}

// publishRecovery exposes the crash-recovery stats of the last Open as
// gauges; they describe a one-time event, not an accumulating count.
func publishRecovery(reg *obs.Registry, rs RecoveryStats) {
	replayed := int64(0)
	if rs.Replayed {
		replayed = 1
	}
	reg.Gauge("walrus_recovery_replayed", "1 when the last Open replayed a WAL after an unclean shutdown.").Set(replayed)
	reg.Gauge("walrus_recovery_records_scanned", "WAL records scanned by the last recovery.").Set(int64(rs.RecordsScanned))
	reg.Gauge("walrus_recovery_pages_applied", "Page images applied by the last recovery.").Set(int64(rs.PagesApplied))
	reg.Gauge("walrus_recovery_pages_skipped", "Page images skipped by the last recovery (already on disk).").Set(int64(rs.PagesSkipped))
	reg.Gauge("walrus_recovery_app_records", "Catalog deltas delivered by the last recovery.").Set(int64(rs.AppRecords))
}

// Metrics returns a point-in-time snapshot of every metric in the
// registry attached with SetMetrics — the programmatic counterpart of the
// /metrics endpoint. With no registry attached it returns an empty
// snapshot with non-nil maps.
func (db *DB) Metrics() obs.Snapshot {
	if m := db.om.Load(); m != nil {
		return m.reg.Snapshot()
	}
	var none *obs.Registry
	return none.Snapshot()
}
