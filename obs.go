package walrus

import (
	"walrus/internal/obs"
	"walrus/internal/parallel"
	"walrus/internal/rstar"
)

// dbMetrics holds the DB's pre-resolved obs handles. One pointer load on
// the query path decides whether instrumentation runs at all; a nil
// pointer (observability off) costs a single atomic load and no clock
// reads beyond the ones QueryStats already pays for.
type dbMetrics struct {
	reg *obs.Registry

	queries          *obs.Counter
	queryRegions     *obs.Counter
	regionsRetrieved *obs.Counter
	candidates       *obs.Counter

	querySeconds   *obs.Histogram
	extractSeconds *obs.Histogram
	probeSeconds   *obs.Histogram
	scoreSeconds   *obs.Histogram

	ingests       *obs.Counter
	ingestRegions *obs.Counter
	ingestSeconds *obs.Histogram
	removes       *obs.Counter
	checkpoints   *obs.Counter

	images  *obs.Gauge
	regions *obs.Gauge

	snapshotVersion *obs.Gauge
	activeSnapshots *obs.Gauge
	snapshotsTotal  *obs.Counter
	publishes       *obs.Counter
	publishSeconds  *obs.Histogram

	cache cacheMetrics
}

// SetMetrics attaches an observability registry to the database and every
// subsystem under it: query and ingest phase metrics publish alongside the
// buffer pool, pager, heap, WAL, R*-tree and worker-pool counters in one
// namespace. Passing nil detaches everything (the default state: with no
// registry the instrumentation is a nil fast path).
//
// The registry is attached at runtime rather than through Options because
// Options is gob-encoded into the on-disk catalog. Call SetMetrics after
// New, Create or Open; it is safe to call while readers run, but metrics
// recorded before the call are not retroactively created.
//
// The worker-pool gauges are process-global: when several databases share
// a process, the last SetMetrics call wins for walrus_pool_*.
func (db *DB) SetMetrics(reg *obs.Registry) { db.setMetricsScoped(reg, "") }

// setMetricsScoped is SetMetrics with a metric-name scope. A non-empty
// scope like "shard3_" is spliced after the walrus_ prefix of every
// DB-level metric (walrus_shard3_query_total, walrus_shard3_images, ...),
// giving each shard of a Sharded database its own series in one shared
// registry. Subsystem metrics (R*-tree, buffer pool, pager, heap, WAL,
// worker pool) keep their unscoped names: the registry returns the same
// handle for a duplicate name, so shards aggregate into one series there.
func (db *DB) setMetricsScoped(reg *obs.Registry, scope string) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if t, ok := db.tree.(*rstar.Tree); ok {
		t.SetMetrics(reg)
	}
	if p := db.persist; p != nil {
		p.pool.SetMetrics(reg)
		p.pg.SetMetrics(reg)
		p.heap.SetMetrics(reg)
		p.wal.SetMetrics(reg)
	}
	parallel.SetMetrics(reg)
	if reg == nil {
		db.om.Store(nil)
		return
	}
	m := newDBMetrics(reg, scope)
	m.images.Set(int64(len(db.byID)))
	m.regions.Set(int64(db.liveRegions))
	if c := db.cur.Load(); c != nil {
		m.snapshotVersion.Set(int64(c.version))
	}
	if p := db.persist; p != nil {
		publishRecovery(reg, scope, p.recovery)
	}
	db.om.Store(m)
}

// newDBMetrics resolves every DB-level handle in the registry under the
// given name scope ("" for a standalone database, "shardN_" per shard).
func newDBMetrics(reg *obs.Registry, scope string) *dbMetrics {
	n := func(base string) string { return "walrus_" + scope + base }
	return &dbMetrics{
		reg:              reg,
		queries:          reg.Counter(n("query_total"), "Queries served."),
		queryRegions:     reg.Counter(n("query_regions_total"), "Regions extracted from query images."),
		regionsRetrieved: reg.Counter(n("query_regions_retrieved_total"), "Matching database regions retrieved by index probes."),
		candidates:       reg.Counter(n("query_candidates_total"), "Candidate images scored by queries."),
		querySeconds:     reg.Histogram(n("query_seconds"), "End-to-end query latency.", nil),
		extractSeconds:   reg.Histogram(n("query_extract_seconds"), "Query region-extraction phase latency.", nil),
		probeSeconds:     reg.Histogram(n("query_probe_seconds"), "Query index-probe phase latency.", nil),
		scoreSeconds:     reg.Histogram(n("query_score_seconds"), "Query candidate-scoring phase latency.", nil),
		ingests:          reg.Counter(n("ingest_total"), "Images ingested."),
		ingestRegions:    reg.Counter(n("ingest_regions_total"), "Regions indexed by ingest."),
		ingestSeconds:    reg.Histogram(n("ingest_seconds"), "Per-image catalog and index insertion latency (excludes region extraction).", nil),
		removes:          reg.Counter(n("removes_total"), "Images removed."),
		checkpoints:      reg.Counter(n("checkpoints_total"), "Checkpoints taken by the disk store."),
		images:           reg.Gauge(n("images"), "Indexed images."),
		regions:          reg.Gauge(n("regions"), "Live indexed regions."),
		snapshotVersion:  reg.Gauge(n("snapshot_version"), "Currently published catalog version."),
		activeSnapshots:  reg.Gauge(n("snapshots_active"), "Snapshots acquired and not yet released."),
		snapshotsTotal:   reg.Counter(n("snapshots_total"), "Snapshots acquired."),
		publishes:        reg.Counter(n("publishes_total"), "Catalog versions published by writers."),
		publishSeconds:   reg.Histogram(n("publish_seconds"), "Latency of building and publishing one catalog version.", nil),
		cache:            newCacheMetrics(reg, n),
	}
}

// publishRecovery exposes the crash-recovery stats of the last Open as
// gauges; they describe a one-time event, not an accumulating count. The
// scope keeps each shard's recovery report distinct.
func publishRecovery(reg *obs.Registry, scope string, rs RecoveryStats) {
	replayed := int64(0)
	if rs.Replayed {
		replayed = 1
	}
	n := func(base string) string { return "walrus_" + scope + base }
	reg.Gauge(n("recovery_replayed"), "1 when the last Open replayed a WAL after an unclean shutdown.").Set(replayed)
	reg.Gauge(n("recovery_records_scanned"), "WAL records scanned by the last recovery.").Set(int64(rs.RecordsScanned))
	reg.Gauge(n("recovery_pages_applied"), "Page images applied by the last recovery.").Set(int64(rs.PagesApplied))
	reg.Gauge(n("recovery_pages_skipped"), "Page images skipped by the last recovery (already on disk).").Set(int64(rs.PagesSkipped))
	reg.Gauge(n("recovery_app_records"), "Catalog deltas delivered by the last recovery.").Set(int64(rs.AppRecords))
}

// Metrics returns a point-in-time snapshot of every metric in the
// registry attached with SetMetrics — the programmatic counterpart of the
// /metrics endpoint. With no registry attached it returns an empty
// snapshot with non-nil maps.
func (db *DB) Metrics() obs.Snapshot {
	if m := db.om.Load(); m != nil {
		return m.reg.Snapshot()
	}
	var none *obs.Registry
	return none.Snapshot()
}
