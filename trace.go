package walrus

import (
	"context"

	"walrus/internal/obs"
)

// Query EXPLAIN. A caller that wants to see the candidate funnel of one
// query — how many regions each pipeline stage received and passed on,
// per shard and in total — attaches a QueryTrace to the context with
// WithQueryTrace and reads it back after the query returns:
//
//	ctx, qt := walrus.WithQueryTrace(ctx)
//	matches, _, err := db.QueryContext(ctx, img, params)
//	// qt now holds the stage-by-stage funnel
//
// The accumulator piggybacks the existing stats plumbing: stages write
// per-region counts into preallocated slots (no locks, deterministic at
// every parallelism), and a query that carries no QueryTrace pays only a
// context lookup at entry — the stages themselves never branch on it in
// their inner loops. Funnel counts are schedule-independent; only the
// *_ns timing fields vary run to run.

// queryTraceKey is the context key carrying the *QueryTrace accumulator.
type queryTraceKey struct{}

// WithQueryTrace returns a context that asks the next query executed
// under it to record its candidate funnel into the returned QueryTrace.
// One QueryTrace describes one query: run each explained query under its
// own WithQueryTrace context.
func WithQueryTrace(ctx context.Context) (context.Context, *QueryTrace) {
	qt := &QueryTrace{}
	return context.WithValue(ctx, queryTraceKey{}, qt), qt
}

// queryTraceFrom returns the QueryTrace accumulator carried by ctx, or
// nil when the query is not being explained.
func queryTraceFrom(ctx context.Context) *QueryTrace {
	qt, _ := ctx.Value(queryTraceKey{}).(*QueryTrace)
	return qt
}

// ExplainParams echoes the query parameters the explained query ran
// with, resolved to their effective values.
type ExplainParams struct {
	Epsilon       float64 `json:"epsilon"`
	RefineEpsilon float64 `json:"refine_epsilon"`
	Tau           float64 `json:"tau"`
	Limit         int     `json:"limit"`
	Refine        bool    `json:"refine"`
	// Prefilter is the effective coarse-tier setting: false when the
	// request asked for it but the database indexes bounding boxes, where
	// the tier does not apply.
	Prefilter   bool   `json:"prefilter"`
	Matcher     string `json:"matcher"`
	Parallelism int    `json:"parallelism"`
}

// ExplainStage is one pipeline stage of the candidate funnel. In and Out
// count the items entering and surviving the stage; what an "item" is
// depends on the stage (probes for probe, region hits for refine and
// aggregate, candidate images for score, per-shard matches for merge).
type ExplainStage struct {
	Stage string `json:"stage"`
	In    int    `json:"in"`
	Out   int    `json:"out"`
	// IndexHits and NodesVisited are nonzero only for the probe stage:
	// raw index entries returned before catalog/distance filtering, and
	// R*-tree nodes visited doing it (0 on the GiST backend, which does
	// not count visits).
	IndexHits    int `json:"index_hits"`
	NodesVisited int `json:"nodes_visited"`
	// DurationNS is the stage's wall time; on a sharded query it is the
	// slowest shard's time for that stage (the critical path), since
	// shards run the stage concurrently.
	DurationNS int64 `json:"duration_ns"`
}

// ExplainShard is one shard's slice of the funnel. A single-store query
// reports exactly one row with Shard 0.
type ExplainShard struct {
	Shard            int    `json:"shard"`
	Version          uint64 `json:"version"`
	IndexHits        int    `json:"index_hits"`
	NodesVisited     int    `json:"nodes_visited"`
	RegionsRetrieved int    `json:"regions_retrieved"`
	CandidateImages  int    `json:"candidate_images"`
	Matches          int    `json:"matches"`
	// ProbeNS covers the shard's probe+refine+aggregate work, ScoreNS
	// its candidate scoring, as measured inside the shard's fan-out task.
	ProbeNS int64 `json:"probe_ns"`
	ScoreNS int64 `json:"score_ns"`
}

// QueryTrace is the stage-by-stage candidate funnel of one query — the
// payload behind /v1/search?explain=1 and walrus-query -explain. All
// counts are deterministic: identical at every shard count and every
// Parallelism setting; only trace id and *_ns timings vary.
type QueryTrace struct {
	// TraceID links the funnel to the live span tree recorded in the obs
	// span ring ("" when no registry/span was active for the query).
	TraceID string `json:"trace_id,omitempty"`
	// Sharded reports whether the query fanned out across shards.
	Sharded      bool           `json:"sharded"`
	QueryRegions int            `json:"query_regions"`
	Params       ExplainParams  `json:"params"`
	Stages       []ExplainStage `json:"stages"`
	Shards       []ExplainShard `json:"shards"`
	Matches      int            `json:"matches"`
	ElapsedNS    int64          `json:"elapsed_ns"`
}

// traceCollector accumulates one shard's share of the funnel while the
// staged pipeline runs. The per-region slices are slot-indexed so
// parallel probe/refine tasks record without synchronization, exactly
// like the stages' own result slots; the scalar fields are written by
// the single goroutine driving that shard's stages.
type traceCollector struct {
	version      uint64
	indexHits    []int // per query region: raw index entries returned
	nodeVisits   []int // per query region: index nodes visited
	probeOut     []int // per query region: hits surviving the probe filter
	prefilterOut []int // per query region: hits surviving the coarse prefilter
	refineOut    []int // per query region: hits surviving refine

	// prefiltered records that the plan ran the coarse tier, so fill
	// knows to emit its funnel row (the effective setting can differ from
	// the requested one on bounding-box databases).
	prefiltered bool

	probeNS, prefilterNS, refineNS, aggregateNS, scoreNS int64
	candidates, matches                                  int
}

func newTraceCollector(nRegions int, version uint64) *traceCollector {
	return &traceCollector{
		version:      version,
		indexHits:    make([]int, nRegions),
		nodeVisits:   make([]int, nRegions),
		probeOut:     make([]int, nRegions),
		prefilterOut: make([]int, nRegions),
		refineOut:    make([]int, nRegions),
	}
}

// recordNS files one stage's wall time into the collector slot matching
// its plan name; the stage runner calls it after each stage completes.
func (tc *traceCollector) recordNS(stage string, ns int64) {
	switch stage {
	case "probe":
		tc.probeNS = ns
	case "prefilter":
		tc.prefilterNS = ns
	case "refine":
		tc.refineNS = ns
	case "aggregate":
		tc.aggregateNS = ns
	case "score":
		tc.scoreNS = ns
	}
}

func sumInts(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

func maxNS(tcs []*traceCollector, get func(*traceCollector) int64) int64 {
	var m int64
	for _, tc := range tcs {
		if v := get(tc); v > m {
			m = v
		}
	}
	return m
}

// explainParams resolves p into the echoed parameter block.
func explainParams(p QueryParams) ExplainParams {
	return ExplainParams{
		Epsilon:       p.Epsilon,
		RefineEpsilon: p.RefineEpsilon,
		Tau:           p.Tau,
		Limit:         p.Limit,
		Refine:        p.Refine,
		Prefilter:     p.Prefilter,
		Matcher:       p.Matcher.String(),
		Parallelism:   p.Parallelism,
	}
}

// fill assembles the funnel from the per-shard collectors once the
// pipeline has finished. mergedIn is the total per-shard match count
// entering the merge (equal to matches for a single-store query);
// mergeNS is the merge's wall time (0 unsharded).
func (qt *QueryTrace) fill(span *obs.Span, sharded bool, p QueryParams, qRegions int,
	tcs []*traceCollector, stats QueryStats, mergedIn, matches int, mergeNS int64) {
	qt.TraceID = ""
	if span != nil {
		qt.TraceID = obs.FormatTraceID(span.TraceID())
	}
	qt.Sharded = sharded
	qt.QueryRegions = qRegions
	qt.Params = explainParams(p)
	qt.Matches = matches
	qt.ElapsedNS = stats.Elapsed.Nanoseconds()

	prefiltered := len(tcs) > 0 && tcs[0].prefiltered
	qt.Params.Prefilter = prefiltered

	probeHits, prefilterKept, refineKept := 0, 0, 0
	probeIndexHits, probeVisits := 0, 0
	qt.Shards = make([]ExplainShard, len(tcs))
	for i, tc := range tcs {
		shardKept := sumInts(tc.probeOut)
		probeHits += shardKept
		if prefiltered {
			shardKept = sumInts(tc.prefilterOut)
			prefilterKept += shardKept
		}
		if p.Refine {
			shardKept = sumInts(tc.refineOut)
		}
		refineKept += shardKept
		shardIndexHits := sumInts(tc.indexHits)
		shardVisits := sumInts(tc.nodeVisits)
		probeIndexHits += shardIndexHits
		probeVisits += shardVisits
		qt.Shards[i] = ExplainShard{
			Shard:            i,
			Version:          tc.version,
			IndexHits:        shardIndexHits,
			NodesVisited:     shardVisits,
			RegionsRetrieved: shardKept,
			CandidateImages:  tc.candidates,
			Matches:          tc.matches,
			ProbeNS:          tc.probeNS + tc.prefilterNS + tc.refineNS + tc.aggregateNS,
			ScoreNS:          tc.scoreNS,
		}
	}

	qt.Stages = qt.Stages[:0]
	qt.Stages = append(qt.Stages, ExplainStage{
		Stage: "extract", In: 1, Out: qRegions,
		DurationNS: stats.ExtractTime.Nanoseconds(),
	})
	qt.Stages = append(qt.Stages, ExplainStage{
		Stage: "probe", In: qRegions * len(tcs), Out: probeHits,
		IndexHits: probeIndexHits, NodesVisited: probeVisits,
		DurationNS: maxNS(tcs, func(tc *traceCollector) int64 { return tc.probeNS }),
	})
	flow := probeHits
	if prefiltered {
		qt.Stages = append(qt.Stages, ExplainStage{
			Stage: "prefilter", In: flow, Out: prefilterKept,
			DurationNS: maxNS(tcs, func(tc *traceCollector) int64 { return tc.prefilterNS }),
		})
		flow = prefilterKept
	}
	if p.Refine {
		qt.Stages = append(qt.Stages, ExplainStage{
			Stage: "refine", In: flow, Out: refineKept,
			DurationNS: maxNS(tcs, func(tc *traceCollector) int64 { return tc.refineNS }),
		})
		flow = refineKept
	}
	qt.Stages = append(qt.Stages, ExplainStage{
		Stage: "aggregate", In: flow, Out: stats.CandidateImages,
		DurationNS: maxNS(tcs, func(tc *traceCollector) int64 { return tc.aggregateNS }),
	})
	qt.Stages = append(qt.Stages, ExplainStage{
		Stage: "score", In: stats.CandidateImages, Out: mergedIn,
		DurationNS: maxNS(tcs, func(tc *traceCollector) int64 { return tc.scoreNS }),
	})
	if sharded {
		qt.Stages = append(qt.Stages, ExplainStage{
			Stage: "merge", In: mergedIn, Out: matches, DurationNS: mergeNS,
		})
	}
}

// noteCacheMiss prepends the "cache" funnel row of a query that went
// through an enabled result cache and missed: one lookup entered the
// cache and one query proceeded into the pipeline. Called by the caching
// wrapper after the underlying query filled the trace.
func (qt *QueryTrace) noteCacheMiss(ns int64) {
	qt.Stages = append([]ExplainStage{{Stage: "cache", In: 1, Out: 1, DurationNS: ns}}, qt.Stages...)
}

// fillCacheHit describes a query answered entirely from the result
// cache: a single "cache" row with Out 0 — nothing reached the pipeline
// — carrying the pinned version's funnel totals from the cached stats.
// There are no shard rows and no trace id: no span tree was recorded.
func (qt *QueryTrace) fillCacheHit(p QueryParams, sharded bool, stats QueryStats, matches int, ns int64) {
	qt.TraceID = ""
	qt.Sharded = sharded
	qt.QueryRegions = stats.QueryRegions
	qt.Params = explainParams(p)
	qt.Matches = matches
	qt.ElapsedNS = stats.Elapsed.Nanoseconds()
	qt.Stages = append(qt.Stages[:0], ExplainStage{Stage: "cache", In: 1, Out: 0, DurationNS: ns})
	qt.Shards = qt.Shards[:0]
}
