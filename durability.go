package walrus

import (
	"fmt"
	"os"

	"walrus/internal/store"
	"walrus/internal/wal"
)

// DurabilityPolicy selects how aggressively a disk-backed database
// forces its write-ahead log to stable storage.
type DurabilityPolicy int

const (
	// DurabilityGroupCommit (the default) writes every commit to the OS
	// immediately but fsyncs the log only once enough bytes accumulate
	// (or at a checkpoint). A crash can lose the most recent operations,
	// but never corrupts the database: recovery discards the torn tail
	// and lands on the last synced commit.
	DurabilityGroupCommit DurabilityPolicy = iota
	// DurabilityAlways fsyncs the log at every commit: once Add or
	// Remove returns, the operation survives any crash.
	DurabilityAlways
	// DurabilityNone never fsyncs the log outside Close. Fastest;
	// operations since the last checkpoint may be lost on a crash (and,
	// if the OS also went down, a torn page may be unrepairable).
	DurabilityNone
)

func (p DurabilityPolicy) String() string {
	switch p {
	case DurabilityGroupCommit:
		return "group"
	case DurabilityAlways:
		return "always"
	case DurabilityNone:
		return "none"
	default:
		return fmt.Sprintf("DurabilityPolicy(%d)", int(p))
	}
}

// ParseDurability parses a policy name ("always", "group", "none") as
// accepted by the CLI -durability flags.
func ParseDurability(s string) (DurabilityPolicy, error) {
	switch s {
	case "group", "groupcommit", "group-commit":
		return DurabilityGroupCommit, nil
	case "always", "sync":
		return DurabilityAlways, nil
	case "none", "off":
		return DurabilityNone, nil
	default:
		return 0, fmt.Errorf("walrus: unknown durability policy %q (want always, group or none)", s)
	}
}

// FileOpener opens one file of a disk-backed database; flag carries
// os.OpenFile flags. Tests inject fault-injecting implementations
// (internal/crashfs) to exercise crash recovery. The field is ignored by
// the catalog encoder, so it never persists. nil means the real
// filesystem.
type FileOpener func(path string, flag int) (store.File, error)

func resolveFS(fs FileOpener) FileOpener {
	if fs != nil {
		return fs
	}
	return func(path string, flag int) (store.File, error) {
		return os.OpenFile(path, flag, 0o644)
	}
}

// RecoveryStats re-exports the WAL recovery report; see
// wal.RecoveryStats for field documentation.
type RecoveryStats = wal.RecoveryStats

// Recovery returns the crash-recovery report from Open. ok is false for
// in-memory databases; Replayed is false when the database had been
// closed cleanly.
func (db *DB) Recovery() (RecoveryStats, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.persist == nil {
		return RecoveryStats{}, false
	}
	return db.persist.recovery, true
}

// SetDurability changes the durability policy of a disk-backed database
// at runtime (the persisted option still reflects creation time until
// the next flush). It is a no-op for in-memory databases.
func (db *DB) SetDurability(p DurabilityPolicy) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.opts.Durability = p
	if db.persist != nil {
		db.persist.policy = p
	}
	// The changed option is part of the published state (Options reads
	// the current snapshot), so commit it as a new version.
	db.publishLocked()
}
