package walrus

import (
	"math"
	"math/bits"

	"walrus/internal/wbiis"
)

// binSigWords is the width of a binary region signature in 64-bit words.
// 512 bits gives the thermometer code 42 levels per coefficient at the
// default 12-dimensional signature — fine enough that the conservative
// Hamming bound (see hammingBound) rejects a useful share of index hits,
// which a narrower code cannot: at 128 bits the level width exceeds the
// default epsilon and the bound accepts nearly everything.
const binSigWords = 8

// binSigBits is the total bit budget of one binary signature.
const binSigBits = binSigWords * 64

// binSig is the coarse prefilter summary of one indexed region: a
// thermometer-coded bit vector over the region's wavelet signature plus
// the signature's standard deviation. Both support cheap rejection tests
// — popcount Hamming distance and the WBIIS variance acceptance test —
// applied between the index probe and the exact distance check.
type binSig struct {
	Bits  [binSigWords]uint64
	Sigma float64
}

// binLevels is the thermometer level count per coefficient: the bit
// budget split evenly across the signature's dimensions. Dimensions
// beyond the budget degrade to zero levels, which encodes nothing and
// makes every Hamming test accept — conservative by construction.
func binLevels(dim int) int {
	if dim <= 0 {
		return 0
	}
	return binSigBits / dim
}

// makeBinSig quantizes a wavelet signature into its binary summary.
// Coefficient i, clamped to [0,1], sets the first floor(v*L) bits of its
// L-bit block (thermometer code), so the Hamming distance between two
// summaries is the sum of per-coefficient level differences. Clamping is
// 1-Lipschitz, so the distance bounds below survive out-of-range values.
func makeBinSig(sig []float64) binSig {
	var bs binSig
	levels := binLevels(len(sig))
	for i, v := range sig {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		t := int(v * float64(levels))
		if t > levels {
			t = levels
		}
		base := i * levels
		for b := base; b < base+t; b++ {
			bs.Bits[b>>6] |= 1 << (uint(b) & 63)
		}
	}
	bs.Sigma = wbiis.Stddev(sig)
	return bs
}

// hamming is the bit-level distance between two binary signatures: eight
// XOR+popcount word operations, the entire per-hit cost of the coarse
// tier's first test.
func (a *binSig) hamming(b *binSig) int {
	h := 0
	for i := range a.Bits {
		h += bits.OnesCount64(a.Bits[i] ^ b.Bits[i])
	}
	return h
}

// hammingBound is the largest Hamming distance two binary signatures can
// reach while the underlying signatures stay within eps in euclidean
// distance: per-coefficient thermometer levels differ by at most
// L·|Δi|+1, and ‖Δ‖₂ ≤ eps implies ‖Δ‖₁ ≤ eps·√dim, so
// H ≤ L·eps·√dim + dim. A hit above the bound is provably outside the
// epsilon envelope and safe to drop before the exact check.
func hammingBound(dim int, eps float64) int {
	levels := binLevels(dim)
	return int(float64(levels)*eps*math.Sqrt(float64(dim))) + dim
}

// sigmaBound is the largest |σ(a)−σ(b)| compatible with ‖a−b‖₂ ≤ eps:
// the standard deviation is 1/√dim times the norm of the mean-removed
// signature, a 1-Lipschitz projection, so a σ difference beyond
// eps/√dim proves the pair is outside the envelope. The prefilter
// accepts a hit whenever the WBIIS β-test passes OR the difference is
// under this bound, so the variance tier never drops a true match.
func sigmaBound(dim int, eps float64) float64 {
	if dim <= 0 {
		return 0
	}
	return eps / math.Sqrt(float64(dim))
}
