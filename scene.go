package walrus

import (
	"fmt"

	"walrus/internal/imgio"
	"walrus/internal/match"
)

// QueryScene runs a similarity query using only a user-specified
// rectangular scene of the query image — the "user-specified scenes" of
// the system's name. The rectangle is cropped out, regions are extracted
// from it alone, and candidate images are scored on how much of the
// *scene* (not the whole query image) their matching regions cover, using
// the query-only similarity variant of Section 4. This finds images that
// contain the selected object anywhere, at any size, regardless of what
// else the query image shows.
//
// The rectangle must be at least Options.Region.MinWindow pixels in each
// dimension.
func (db *DB) QueryScene(im *imgio.Image, x, y, w, h int, p QueryParams) ([]Match, QueryStats, error) {
	db.mu.RLock()
	minW := db.opts.Region.MinWindow
	db.mu.RUnlock()
	if w < minW || h < minW {
		return nil, QueryStats{}, fmt.Errorf("walrus: scene %dx%d smaller than the minimum window %d", w, h, minW)
	}
	crop, err := imgio.Crop(im, x, y, w, h)
	if err != nil {
		return nil, QueryStats{}, fmt.Errorf("walrus: cropping scene: %w", err)
	}
	// Score by coverage of the scene alone: a target that contains the
	// whole scene should score near 1 however large the target is.
	p.Denominator = match.QueryOnly
	return db.Query(crop, p)
}
