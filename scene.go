package walrus

import (
	"context"

	"walrus/internal/imgio"
)

// QueryScene runs a similarity query using only a user-specified
// rectangular scene of the query image — the "user-specified scenes" of
// the system's name. The rectangle is cropped out, regions are extracted
// from it alone, and candidate images are scored on how much of the
// *scene* (not the whole query image) their matching regions cover, using
// the query-only similarity variant of Section 4. This finds images that
// contain the selected object anywhere, at any size, regardless of what
// else the query image shows.
//
// The rectangle must be at least Options.Region.MinWindow pixels in each
// dimension.
func (db *DB) QueryScene(im *imgio.Image, x, y, w, h int, p QueryParams) ([]Match, QueryStats, error) {
	return db.QuerySceneContext(context.Background(), im, x, y, w, h, p)
}

// QuerySceneContext is QueryScene with a deadline; see DB.QueryContext.
func (db *DB) QuerySceneContext(ctx context.Context, im *imgio.Image, x, y, w, h int, p QueryParams) ([]Match, QueryStats, error) {
	s, err := db.Snapshot()
	if err != nil {
		return nil, QueryStats{}, err
	}
	defer s.Release()
	return s.QuerySceneContext(ctx, im, x, y, w, h, p)
}
