package walrus

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"walrus/internal/obs"
)

// TestQueryStatsMatchRegistry checks the two reporting paths agree: the
// QueryStats a serial query returns and the counters/histograms the same
// query published into the registry describe identical quantities.
func TestQueryStatsMatchRegistry(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	db.SetMetrics(reg)
	if err := db.Add("a", scene(green, red, 32, 32, 48)); err != nil {
		t.Fatal(err)
	}
	if err := db.Add("b", scene(gray, blue, 16, 16, 48)); err != nil {
		t.Fatal(err)
	}
	p := DefaultQueryParams()
	p.Parallelism = 1
	_, stats, err := db.Query(scene(green, red, 32, 32, 48), p)
	if err != nil {
		t.Fatal(err)
	}
	snap := db.Metrics()
	wantCounters := map[string]uint64{
		"walrus_query_total":                   1,
		"walrus_query_regions_total":           uint64(stats.QueryRegions),
		"walrus_query_regions_retrieved_total": uint64(stats.RegionsRetrieved),
		"walrus_query_candidates_total":        uint64(stats.CandidateImages),
		"walrus_ingest_total":                  2,
	}
	for name, want := range wantCounters {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	wantHists := map[string]float64{
		"walrus_query_seconds":         stats.Elapsed.Seconds(),
		"walrus_query_extract_seconds": stats.ExtractTime.Seconds(),
		"walrus_query_probe_seconds":   stats.ProbeTime.Seconds(),
		"walrus_query_score_seconds":   stats.ScoreTime.Seconds(),
	}
	for name, want := range wantHists {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Errorf("histogram %s missing from snapshot", name)
			continue
		}
		if h.Count != 1 {
			t.Errorf("%s count = %d, want 1", name, h.Count)
		}
		if math.Abs(h.Sum-want) > 1e-9 {
			t.Errorf("%s sum = %v, want %v (from QueryStats)", name, h.Sum, want)
		}
	}
	if got := snap.Gauges["walrus_images"]; got != 2 {
		t.Errorf("walrus_images = %d, want 2", got)
	}
	if got := snap.Gauges["walrus_regions"]; got != int64(db.NumRegions()) {
		t.Errorf("walrus_regions = %d, want %d", got, db.NumRegions())
	}
	// The query span family made it into the ring.
	spans, _ := reg.Tracer().Spans()
	seen := map[string]bool{}
	for _, s := range spans {
		seen[s.Name] = true
	}
	for _, name := range []string{"query", "query.extract", "query.probe", "query.score", "ingest"} {
		if !seen[name] {
			t.Errorf("span %q not recorded (have %v)", name, seen)
		}
	}
}

// countSnapshot reduces a Snapshot to its scheduling-independent part:
// counters, gauges, and histogram observation counts. Sums and bucket
// placement are wall-clock dependent and excluded.
func countSnapshot(s obs.Snapshot) map[string]int64 {
	out := make(map[string]int64)
	for name, v := range s.Counters {
		out["counter:"+name] = int64(v)
	}
	for name, v := range s.Gauges {
		out["gauge:"+name] = v
	}
	for name, h := range s.Histograms {
		out["hist_count:"+name] = int64(h.Count)
	}
	return out
}

// TestObsCountDeterminism builds two identical in-memory databases with
// separate registries and runs the same queries at Parallelism 1 and
// Parallelism 8: every count metric must be identical — parallelism may
// only change timings, never how much work was done.
func TestObsCountDeterminism(t *testing.T) {
	build := func(reg *obs.Registry, queryWorkers int) obs.Snapshot {
		db, err := New(testOptions())
		if err != nil {
			t.Fatal(err)
		}
		db.SetMetrics(reg)
		for i := 0; i < 6; i++ {
			if err := db.Add(fmt.Sprintf("img-%d", i), scene(green, red, i*10, i*8, 40)); err != nil {
				t.Fatal(err)
			}
		}
		p := DefaultQueryParams()
		p.Parallelism = queryWorkers
		for i := 0; i < 3; i++ {
			if _, _, err := db.Query(scene(green, red, 24, 24, 40), p); err != nil {
				t.Fatal(err)
			}
		}
		db.SetMetrics(nil)
		return reg.Snapshot()
	}
	serial := countSnapshot(build(obs.NewRegistry(), 1))
	parallelSnap := countSnapshot(build(obs.NewRegistry(), 8))
	for name, want := range serial {
		if got, ok := parallelSnap[name]; !ok || got != want {
			t.Errorf("%s: serial=%d parallel=%d", name, want, got)
		}
	}
	for name := range parallelSnap {
		if _, ok := serial[name]; !ok {
			t.Errorf("%s present only in parallel run", name)
		}
	}
}

// TestObsScrapeUnderLoad hammers one database with concurrent adds,
// removes and parallel queries while a scraper loops over the live HTTP
// endpoints, checking every response parses: /metrics must stay valid
// Prometheus text and /debug/vars valid JSON for the whole run. Run with
// -race in CI (the obs tier).
func TestObsScrapeUnderLoad(t *testing.T) {
	opts := testOptions()
	opts.Parallelism = 4
	db, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	db.SetMetrics(reg)
	defer db.SetMetrics(nil)
	srv := httptest.NewServer(obs.Handler(reg))
	defer srv.Close()

	for i := 0; i < 4; i++ {
		if err := db.Add(fmt.Sprintf("seed-%d", i), scene(green, red, i*12, i*9, 40)); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})

	// Writers: add then remove their own images.
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := fmt.Sprintf("w%d-%d", g, i)
				if err := db.Add(id, scene(gray, blue, g*10+i, i*13, 40)); err != nil {
					errs <- err
					return
				}
				if i%2 == 0 {
					if _, err := db.Remove(id); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	// Readers: parallel queries.
	q := scene(green, red, 24, 24, 40)
	p := DefaultQueryParams()
	p.Parallelism = 4
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, _, err := db.Query(q, p); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Scraper: loops until the load is done.
	scrape := func(path string) ([]byte, error) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return io.ReadAll(resp.Body)
	}
	scraperDone := make(chan error, 1)
	go func() {
		for {
			body, err := scrape("/metrics")
			if err == nil {
				err = obs.ValidatePrometheus(body)
			}
			if err == nil {
				_, err = scrape("/debug/vars")
			}
			if err == nil {
				_, err = scrape("/debug/walrus/spans")
			}
			if err != nil {
				scraperDone <- err
				return
			}
			select {
			case <-stop:
				scraperDone <- nil
				return
			default:
			}
		}
	}()

	wg.Wait()
	close(stop)
	if err := <-scraperDone; err != nil {
		t.Fatal(err)
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// One final scrape after the dust settles must also validate.
	body, err := scrape("/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePrometheus(body); err != nil {
		t.Fatalf("final scrape invalid: %v\n%s", err, body)
	}
	snap := db.Metrics()
	if snap.Counters["walrus_query_total"] == 0 || snap.Counters["walrus_ingest_total"] == 0 ||
		snap.Counters["walrus_removes_total"] == 0 {
		t.Fatalf("expected query/ingest/remove counters to be nonzero: %v", snap.Counters)
	}
}

// TestMetricsNilRegistry checks the off state: no registry means an empty
// (but non-nil) snapshot and no panics anywhere on the instrumented paths.
func TestMetricsNilRegistry(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("a", scene(green, red, 32, 32, 48)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Query(scene(green, red, 32, 32, 48), DefaultQueryParams()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Remove("a"); err != nil {
		t.Fatal(err)
	}
	snap := db.Metrics()
	if snap.Counters == nil || snap.Gauges == nil || snap.Histograms == nil {
		t.Fatalf("nil maps in empty snapshot: %+v", snap)
	}
	if len(snap.Counters) != 0 {
		t.Fatalf("unexpected metrics without a registry: %v", snap.Counters)
	}
}
