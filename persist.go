package walrus

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"walrus/internal/region"
	"walrus/internal/rstar"
	"walrus/internal/store"
)

// File names inside a disk-backed database directory.
const (
	indexFileName   = "index.db"
	catalogFileName = "catalog.gob"
)

// heapRootSlot is the pager root slot holding the region heap's first
// page (slots 0-2 belong to the paged R*-tree).
const heapRootSlot = 3

// persistState holds the disk machinery of a disk-backed DB. The page
// file carries both the R*-tree nodes and a slotted-page heap with every
// region's serialized payload (signature, bounding box, bitmap) — the
// paper stores these "in the index along with the signature of each
// region" (Section 5.4). The catalog file holds only image metadata and
// the payload directory.
type persistState struct {
	dir  string
	pg   *store.Pager
	pool *store.BufferPool
	ps   *rstar.PagedStore
	heap *store.HeapFile
}

// catalogImage is the persisted image metadata (regions live in the heap).
type catalogImage struct {
	ID         string
	W, H       int
	NumRegions int
}

// catalogData is the gob-serialized portion of a DB.
type catalogData struct {
	Opts   Options
	Images []catalogImage
	Refs   []regionRef
}

// Create creates a disk-backed database in dir (which is created if
// needed).
func Create(dir string, opts Options) (*DB, error) {
	if opts.Index != IndexRStar {
		return nil, fmt.Errorf("walrus: disk-backed databases support only the %v index backend", IndexRStar)
	}
	db, err := prepare(opts)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("walrus: creating %s: %w", dir, err)
	}
	pg, err := store.Create(filepath.Join(dir, indexFileName), store.DefaultPageSize)
	if err != nil {
		return nil, err
	}
	pool, err := store.NewBufferPool(pg, 256)
	if err != nil {
		pg.Close()
		return nil, err
	}
	ps, err := rstar.NewPagedStore(pg, pool, opts.Region.Dim())
	if err != nil {
		pg.Close()
		return nil, err
	}
	tree, err := rstar.New(ps)
	if err != nil {
		pg.Close()
		return nil, err
	}
	heap, err := store.NewHeapFile(pg, pool, heapRootSlot)
	if err != nil {
		pg.Close()
		return nil, err
	}
	db.tree = tree
	db.persist = &persistState{dir: dir, pg: pg, pool: pool, ps: ps, heap: heap}
	if err := db.Flush(); err != nil {
		pg.Close()
		return nil, err
	}
	return db, nil
}

// Open reopens a disk-backed database created by Create, rebuilding the
// in-memory region cache from the heap file.
func Open(dir string) (*DB, error) {
	f, err := os.Open(filepath.Join(dir, catalogFileName))
	if err != nil {
		return nil, fmt.Errorf("walrus: opening catalog: %w", err)
	}
	var cat catalogData
	err = gob.NewDecoder(f).Decode(&cat)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("walrus: decoding catalog: %w", err)
	}
	db, err := prepare(cat.Opts)
	if err != nil {
		return nil, err
	}
	pg, err := store.Open(filepath.Join(dir, indexFileName))
	if err != nil {
		return nil, err
	}
	pool, err := store.NewBufferPool(pg, 256)
	if err != nil {
		pg.Close()
		return nil, err
	}
	ps, err := rstar.NewPagedStore(pg, pool, cat.Opts.Region.Dim())
	if err != nil {
		pg.Close()
		return nil, err
	}
	tree, err := rstar.Load(ps)
	if err != nil {
		pg.Close()
		return nil, err
	}
	heap, err := store.OpenHeapFile(pg, pool, heapRootSlot)
	if err != nil {
		pg.Close()
		return nil, err
	}

	db.images = make([]imageRecord, len(cat.Images))
	for i, ci := range cat.Images {
		db.images[i] = imageRecord{ID: ci.ID, W: ci.W, H: ci.H}
		if ci.NumRegions > 0 {
			db.images[i].Regions = make([]region.Region, ci.NumRegions)
		}
		if ci.ID != "" {
			db.byID[ci.ID] = i
		}
	}
	db.refs = cat.Refs
	for _, ref := range cat.Refs {
		if ref.Local < 0 {
			continue
		}
		rec, err := heap.Get(store.UnpackRID(ref.RID))
		if err != nil {
			pg.Close()
			return nil, fmt.Errorf("walrus: loading region payload: %w", err)
		}
		var r region.Region
		if err := r.UnmarshalBinary(rec); err != nil {
			pg.Close()
			return nil, fmt.Errorf("walrus: decoding region payload: %w", err)
		}
		if ref.Image >= len(db.images) || ref.Local >= len(db.images[ref.Image].Regions) {
			pg.Close()
			return nil, fmt.Errorf("walrus: catalog region directory is inconsistent")
		}
		db.images[ref.Image].Regions[ref.Local] = r
	}

	db.tree = tree
	db.persist = &persistState{dir: dir, pg: pg, pool: pool, ps: ps, heap: heap}
	return db, nil
}

// Flush writes the catalog and all dirty index pages to disk. It is a
// no-op for in-memory databases. Flush takes the write lock: concurrent
// flushes would race on the catalog temp file.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.flushLocked()
}

func (db *DB) flushLocked() error {
	if db.persist == nil {
		return nil
	}
	cat := catalogData{Opts: db.opts, Refs: db.refs}
	cat.Images = make([]catalogImage, len(db.images))
	for i, rec := range db.images {
		cat.Images[i] = catalogImage{ID: rec.ID, W: rec.W, H: rec.H, NumRegions: len(rec.Regions)}
	}
	tmp := filepath.Join(db.persist.dir, catalogFileName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("walrus: writing catalog: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(&cat); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("walrus: encoding catalog: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(db.persist.dir, catalogFileName)); err != nil {
		return err
	}
	return db.persist.ps.Flush()
}

// Close flushes and releases a disk-backed database. In-memory databases
// need no Close, but calling it is harmless.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.persist == nil {
		return nil
	}
	if err := db.flushLocked(); err != nil {
		db.persist.pg.Close()
		db.persist = nil
		return err
	}
	err := db.persist.pg.Close()
	db.persist = nil
	return err
}
