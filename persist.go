package walrus

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"walrus/internal/region"
	"walrus/internal/rstar"
	"walrus/internal/store"
	"walrus/internal/wal"
)

// File names inside a disk-backed database directory.
const (
	indexFileName   = "index.db"
	walFileName     = "wal.log"
	catalogFileName = "catalog.gob"
)

// heapRootSlot is the pager root slot holding the region heap's first
// page (slots 0-2 belong to the paged R*-tree).
const heapRootSlot = 3

// Durability machinery tuning.
const (
	// poolCapacity is the buffer pool size in pages.
	poolCapacity = 256
	// groupCommitBytes is the fsync threshold of DurabilityGroupCommit:
	// the log is forced once this many unsynced bytes accumulate.
	groupCommitBytes = 256 << 10
	// walSoftLimit triggers an automatic checkpoint (which truncates the
	// log) once the log outgrows it.
	walSoftLimit = 4 << 20
	// initialLSN starts the LSN stream at 1 because LSN 0 means "never
	// logged" throughout the storage layer.
	initialLSN = wal.LSN(1)
)

// WAL app-record kinds (the wal package treats them as opaque).
const (
	// kindDelta tags a gob-encoded walDelta: one committed catalog change.
	kindDelta = 1
	// kindRebuild marks the start of an unlogged bulk rebuild
	// (CreateFrom). Seeing one after the last checkpoint during recovery
	// means the rebuild was interrupted and the database is unusable.
	kindRebuild = 2
)

// walDelta operations.
const (
	deltaAdd    = 1
	deltaRemove = 2
)

// walDelta is the logical catalog change of one committed operation. Page
// images in the log rebuild the index and heap; deltas rebuild the
// in-memory catalog (image metadata and the payload directory) that the
// catalog file only captures as of the last checkpoint.
type walDelta struct {
	Op   uint8
	ID   string
	W, H int
	// RIDs holds the packed heap record ids of the image's regions, in
	// local order (deltaAdd only).
	RIDs []uint64
}

// persistState holds the disk machinery of a disk-backed DB. The page
// file carries both the R*-tree nodes and a slotted-page heap with every
// region's serialized payload (signature, bounding box, bitmap) — the
// paper stores these "in the index along with the signature of each
// region" (Section 5.4). The catalog file holds image metadata and the
// payload directory as of the last checkpoint; the write-ahead log makes
// every operation since then atomic and (policy permitting) durable.
type persistState struct {
	dir  string
	fs   FileOpener // resolved: never nil
	pg   *store.Pager
	pool *store.BufferPool
	ps   *rstar.PagedStore
	heap *store.HeapFile
	wal  *wal.Log

	policy   DurabilityPolicy
	metaVer  uint64 // pager meta version captured by the last logged meta image
	lastLSN  uint64 // LastLSN of the on-disk catalog
	recovery RecoveryStats
	unlogged bool // bulk rebuild in progress: suspend logging
}

// flushHook enforces the log-before-flush invariant: the buffer pool
// consults it before any dirty page write-back.
func (p *persistState) flushHook(id store.PageID, lsn uint64) error {
	return p.wal.EnsureDurable(wal.LSN(lsn), p.policy != DurabilityNone)
}

// catalogImage is the persisted image metadata (regions live in the heap).
type catalogImage struct {
	ID         string
	W, H       int
	NumRegions int
}

// catalogData is the gob-serialized portion of a DB.
type catalogData struct {
	Opts   Options
	Images []catalogImage
	Refs   []regionRef
	// LastLSN is the WAL position of the checkpoint this catalog
	// snapshot belongs to; recovery replays only deltas past it.
	LastLSN uint64
}

// Create creates a disk-backed database in dir (which is created if
// needed).
func Create(dir string, opts Options) (*DB, error) {
	db, err := createDB(dir, opts)
	if err != nil {
		return nil, err
	}
	db.publishLocked()
	return db, nil
}

// createDB is Create without the final version-1 publish, so CreateFrom
// can bulk-load before any version exists (pre-publish index writes need
// no copy-on-write capture) and publish exactly once at the end.
func createDB(dir string, opts Options) (*DB, error) {
	if opts.Index != IndexRStar {
		return nil, fmt.Errorf("walrus: disk-backed databases support only the %v index backend", IndexRStar)
	}
	db, err := prepare(opts)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("walrus: creating %s: %w", dir, err)
	}
	fs := resolveFS(opts.FS)
	f, err := fs(filepath.Join(dir, indexFileName), os.O_RDWR|os.O_CREATE|os.O_TRUNC)
	if err != nil {
		return nil, fmt.Errorf("walrus: creating index file: %w", err)
	}
	pg, err := store.CreateFile(f, store.DefaultPageSize)
	if err != nil {
		return nil, errors.Join(err, f.Close())
	}
	pg.SetWALBase(uint64(initialLSN))
	wf, err := fs(filepath.Join(dir, walFileName), os.O_RDWR|os.O_CREATE)
	if err != nil {
		return nil, errors.Join(fmt.Errorf("walrus: creating WAL file: %w", err), pg.Close())
	}
	w, err := wal.Create(wf, pg.PhysicalPageSize(), initialLSN)
	if err != nil {
		return nil, errors.Join(err, pg.Close(), wf.Close())
	}
	p := &persistState{dir: dir, fs: fs, pg: pg, wal: w, policy: opts.Durability}
	closeAll := func() error {
		return errors.Join(w.Close(), pg.Close())
	}
	p.pool, err = store.NewBufferPool(pg, poolCapacity)
	if err != nil {
		return nil, errors.Join(err, closeAll())
	}
	p.pool.SetFlushHook(p.flushHook)
	p.ps, err = rstar.NewPagedStore(pg, p.pool, opts.Region.Dim())
	if err != nil {
		return nil, errors.Join(err, closeAll())
	}
	tree, err := rstar.New(rstar.NewVersioned(p.ps))
	if err != nil {
		return nil, errors.Join(err, closeAll())
	}
	p.heap, err = store.NewHeapFile(pg, p.pool, heapRootSlot)
	if err != nil {
		return nil, errors.Join(err, closeAll())
	}
	db.tree = tree
	db.persist = p
	if err := db.Flush(); err != nil {
		return nil, errors.Join(err, closeAll())
	}
	return db, nil
}

// Open reopens a disk-backed database created by Create, running crash
// recovery if the database was not closed cleanly (see DB.Recovery) and
// rebuilding the in-memory region cache from the heap file.
func Open(dir string) (*DB, error) { return OpenFS(dir, nil) }

// OpenFS is Open with an explicit filesystem seam; nil fs uses the real
// filesystem. Crash-recovery tests pass a fault-injecting opener.
func OpenFS(dir string, fs FileOpener) (*DB, error) {
	cf, err := os.Open(filepath.Join(dir, catalogFileName))
	if err != nil {
		return nil, fmt.Errorf("walrus: opening catalog: %w", err)
	}
	var cat catalogData
	err = gob.NewDecoder(cf).Decode(&cat)
	if cerr := cf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("walrus: decoding catalog: %w", err)
	}
	db, err := prepare(cat.Opts)
	if err != nil {
		return nil, err
	}
	db.opts.FS = fs
	opener := resolveFS(fs)
	f, err := opener(filepath.Join(dir, indexFileName), os.O_RDWR)
	if err != nil {
		return nil, fmt.Errorf("walrus: opening index file: %w", err)
	}
	wf, err := opener(filepath.Join(dir, walFileName), os.O_RDWR|os.O_CREATE)
	if err != nil {
		return nil, errors.Join(fmt.Errorf("walrus: opening WAL file: %w", err), f.Close())
	}

	// Replay the log below the pager. The fallbacks are only consulted
	// when the log header itself is torn, which can happen solely during
	// a log truncation — and the base was synced into the page file's
	// meta immediately before every truncation.
	fallbackSize, fallbackBase, ok := store.PeekMeta(f)
	if !ok {
		fallbackSize, fallbackBase = store.DefaultPageSize, uint64(initialLSN)
	}
	type appRec struct {
		lsn     wal.LSN
		kind    byte
		payload []byte
	}
	var apps []appRec
	w, stats, err := wal.Recover(wf, f, fallbackSize, wal.LSN(fallbackBase),
		func(lsn wal.LSN, kind byte, payload []byte) error {
			apps = append(apps, appRec{lsn, kind, append([]byte(nil), payload...)})
			return nil
		})
	if err != nil {
		return nil, errors.Join(fmt.Errorf("walrus: recovering %s: %w", dir, err), f.Close(), wf.Close())
	}
	for _, a := range apps {
		if a.kind == kindRebuild && a.lsn > stats.LastCheckpointLSN {
			return nil, errors.Join(
				fmt.Errorf("walrus: bulk rebuild of %s was interrupted by a crash; re-run CreateFrom", dir),
				w.Close(), f.Close())
		}
	}

	pg, err := store.OpenFile(f)
	if err != nil {
		return nil, errors.Join(fmt.Errorf("walrus: %s: %w", dir, err), w.Close(), f.Close())
	}
	p := &persistState{
		dir: dir, fs: opener, pg: pg, wal: w,
		policy: cat.Opts.Durability, metaVer: pg.MetaVersion(),
		lastLSN: cat.LastLSN, recovery: stats,
	}
	closeAll := func() error {
		return errors.Join(w.Close(), pg.Close())
	}
	p.pool, err = store.NewBufferPool(pg, poolCapacity)
	if err != nil {
		return nil, errors.Join(err, closeAll())
	}
	p.pool.SetFlushHook(p.flushHook)
	p.ps, err = rstar.NewPagedStore(pg, p.pool, cat.Opts.Region.Dim())
	if err != nil {
		return nil, errors.Join(err, closeAll())
	}
	tree, err := rstar.Load(rstar.NewVersioned(p.ps))
	if err != nil {
		return nil, errors.Join(err, closeAll())
	}
	p.heap, err = store.OpenHeapFile(pg, p.pool, heapRootSlot)
	if err != nil {
		return nil, errors.Join(err, closeAll())
	}

	db.images = make([]imageRecord, len(cat.Images))
	for i, ci := range cat.Images {
		db.images[i] = imageRecord{ID: ci.ID, W: ci.W, H: ci.H}
		if ci.NumRegions > 0 {
			db.images[i].Regions = make([]region.Region, ci.NumRegions)
		}
		if ci.ID != "" {
			db.byID[ci.ID] = i
		}
	}
	db.refs = cat.Refs

	// Reapply committed catalog deltas past the catalog snapshot (the
	// page images carrying the same operations' index and heap changes
	// were already replayed above).
	for _, a := range apps {
		if a.kind != kindDelta || uint64(a.lsn) <= cat.LastLSN {
			continue
		}
		var d walDelta
		if err := gob.NewDecoder(bytes.NewReader(a.payload)).Decode(&d); err != nil {
			return nil, errors.Join(fmt.Errorf("walrus: decoding WAL delta: %w", err), closeAll())
		}
		if err := db.applyDeltaLocked(&d); err != nil {
			return nil, errors.Join(err, closeAll())
		}
	}

	for _, ref := range db.refs {
		if ref.Local < 0 {
			continue
		}
		rec, err := p.heap.Get(store.UnpackRID(ref.RID))
		if err != nil {
			return nil, errors.Join(fmt.Errorf("walrus: loading region payload: %w", err), closeAll())
		}
		var r region.Region
		if err := r.UnmarshalBinary(rec); err != nil {
			return nil, errors.Join(fmt.Errorf("walrus: decoding region payload: %w", err), closeAll())
		}
		if ref.Image >= len(db.images) || ref.Local >= len(db.images[ref.Image].Regions) {
			return nil, errors.Join(fmt.Errorf("walrus: catalog region directory is inconsistent"), closeAll())
		}
		db.images[ref.Image].Regions[ref.Local] = r
	}

	// Binary prefilter signatures are derived state, rebuilt from the
	// regions just attached (catalog refs and WAL-replayed refs alike)
	// rather than persisted; tombstoned slots stay zero and are never
	// probed.
	db.bsigs = make([]binSig, len(db.refs))
	for i, ref := range db.refs {
		if ref.Local < 0 {
			continue
		}
		db.bsigs[i] = makeBinSig(db.images[ref.Image].Regions[ref.Local].Signature)
	}

	db.liveRegions = countLiveRefs(db.refs)
	db.tree = tree
	db.persist = p
	db.publishLocked()
	return db, nil
}

// countLiveRefs counts refs that are not tombstoned; constructors call
// it once so writers can keep the count incremental afterwards.
func countLiveRefs(refs []regionRef) int {
	n := 0
	for _, ref := range refs {
		if ref.Local >= 0 {
			n++
		}
	}
	return n
}

// applyDeltaLocked replays one committed catalog delta onto the in-memory
// catalog, mirroring exactly what addExtractedLocked and Remove do to it. The
// Locked suffix here means "caller owns the catalog exclusively": it runs
// only during OpenFS recovery, before the DB is published to any other
// goroutine.
func (db *DB) applyDeltaLocked(d *walDelta) error {
	switch d.Op {
	case deltaAdd:
		imgIdx := len(db.images)
		rec := imageRecord{ID: d.ID, W: d.W, H: d.H}
		if len(d.RIDs) > 0 {
			rec.Regions = make([]region.Region, len(d.RIDs))
		}
		db.images = append(db.images, rec)
		db.byID[d.ID] = imgIdx
		for local, rid := range d.RIDs {
			db.refs = append(db.refs, regionRef{Image: imgIdx, Local: local, RID: rid})
		}
	case deltaRemove:
		imgIdx, ok := db.byID[d.ID]
		if !ok {
			return fmt.Errorf("walrus: WAL removes unknown image %q", d.ID)
		}
		for i := range db.refs {
			if db.refs[i].Image == imgIdx && db.refs[i].Local >= 0 {
				db.refs[i].Local = -1
			}
		}
		delete(db.byID, d.ID)
		db.images[imgIdx].Regions = nil
		db.images[imgIdx].ID = ""
	default:
		return fmt.Errorf("walrus: unknown WAL delta op %d", d.Op)
	}
	return nil
}

// logPendingLocked captures redo images of every page changed since its
// last logging, plus the pager meta page if allocation state moved, into
// the WAL. Caller holds db.mu.
func (db *DB) logPendingLocked() error {
	p := db.persist
	if err := p.pool.LogDirty(func(id store.PageID, data []byte) (uint64, error) {
		return uint64(p.wal.AppendPage(uint32(id), data)), nil
	}); err != nil {
		return err
	}
	if v := p.pg.MetaVersion(); v != p.metaVer {
		lsn := p.wal.AppendPage(0, p.pg.MetaImage())
		p.pg.SetMetaLSN(uint64(lsn))
		p.metaVer = v
	}
	return nil
}

// commitLocked ends one mutating operation: it logs redo images of every
// page the operation touched, the catalog delta, and a commit marker,
// then applies the durability policy and (occasionally) checkpoints.
// Together with the buffer pool's no-steal policy this makes the
// operation atomic across crashes: recovery either replays it fully or
// discards it wholesale. Caller holds db.mu.
func (db *DB) commitLocked(delta *walDelta) error {
	p := db.persist
	if p == nil || p.unlogged {
		return nil
	}
	if err := db.logPendingLocked(); err != nil {
		return err
	}
	if delta != nil {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(delta); err != nil {
			return fmt.Errorf("walrus: encoding WAL delta: %w", err)
		}
		p.wal.AppendApp(kindDelta, buf.Bytes())
	}
	p.wal.AppendCommit()
	var err error
	switch p.policy {
	case DurabilityAlways:
		err = p.wal.Sync()
	case DurabilityNone:
		err = p.wal.Flush()
	default: // DurabilityGroupCommit
		err = p.wal.MaybeSync(groupCommitBytes)
	}
	if err != nil {
		return err
	}
	if p.pool.DirtyCount() >= poolCapacity*3/4 || p.wal.Size() >= walSoftLimit {
		return db.checkpointLocked(false)
	}
	return nil
}

// checkpointLocked flushes all dirty state to the page file, snapshots
// the catalog, and truncates the log. The ordering makes every crash
// window recoverable:
//
//  1. log still-unlogged dirty pages (logPending; they become committed
//     by the checkpoint record in step 5),
//  2. force the log durable, so the write-backs of step 4 never overtake
//     it (log-before-flush),
//  3. persist the next log generation's base LSN in the page file's
//     meta, so recovery can rebuild the log header if step 7 is torn,
//  4. write back every dirty page and sync the page file,
//  5. append + sync the checkpoint record — recovery now starts here,
//  6. atomically replace the catalog, stamped with the checkpoint LSN,
//  7. truncate the log, starting the next generation.
//
// A crash before step 5 recovers from the old log generation; between 5
// and 6, from the checkpoint with delta replay; after 6 the catalog is
// current and replay finds nothing to do. Caller holds db.mu.
func (db *DB) checkpointLocked(logPending bool) error {
	p := db.persist
	if logPending {
		if err := db.logPendingLocked(); err != nil {
			return err
		}
	}
	if err := p.wal.Sync(); err != nil {
		return err
	}
	newBase := p.wal.EndLSN() + wal.RecordOverhead
	p.pg.SetWALBase(uint64(newBase))
	if err := p.pool.FlushAll(); err != nil {
		return err
	}
	ckLSN, err := p.wal.Checkpoint()
	if err != nil {
		return err
	}
	if err := db.writeCatalogLocked(uint64(ckLSN)); err != nil {
		return err
	}
	if err := p.wal.Reset(newBase); err != nil {
		return err
	}
	p.metaVer = p.pg.MetaVersion()
	if m := db.om.Load(); m != nil {
		m.checkpoints.Inc()
	}
	return nil
}

// writeCatalogLocked atomically replaces the catalog file: encode to a
// temp file, fsync it, rename over the old catalog, fsync the directory.
// Caller holds db.mu.
func (db *DB) writeCatalogLocked(lastLSN uint64) error {
	p := db.persist
	cat := catalogData{Opts: db.opts, Refs: db.refs, LastLSN: lastLSN}
	cat.Images = make([]catalogImage, len(db.images))
	for i, rec := range db.images {
		cat.Images[i] = catalogImage{ID: rec.ID, W: rec.W, H: rec.H, NumRegions: len(rec.Regions)}
	}
	tmp := filepath.Join(p.dir, catalogFileName+".tmp")
	f, err := p.fs(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC)
	if err != nil {
		return fmt.Errorf("walrus: writing catalog: %w", err)
	}
	if err := gob.NewEncoder(&fileWriter{f: f}).Encode(&cat); err != nil {
		err = errors.Join(fmt.Errorf("walrus: encoding catalog: %w", err), f.Close())
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		err = errors.Join(err, f.Close())
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(p.dir, catalogFileName)); err != nil {
		return err
	}
	syncDir(p.dir)
	p.lastLSN = lastLSN
	return nil
}

// fileWriter adapts a store.File to io.Writer for the catalog encoder.
type fileWriter struct {
	f   store.File
	off int64
}

func (w *fileWriter) Write(b []byte) (int, error) {
	n, err := w.f.WriteAt(b, w.off)
	w.off += int64(n)
	return n, err
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Errors are ignored: some filesystems reject directory fsync,
// and the rename itself already ordered correctly on those that matter.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	//walrus:lint-ignore errsink directory fsync is best-effort: some filesystems reject it outright
	_ = d.Sync()
	//walrus:lint-ignore errsink closing a read-only directory handle cannot lose data
	_ = d.Close()
}

// Flush checkpoints a disk-backed database: all dirty pages reach the
// page file, the catalog is rewritten, and the write-ahead log is
// truncated. It is a no-op for in-memory databases. Flush takes the
// write lock: concurrent flushes would race on the catalog temp file.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.flushLocked()
}

func (db *DB) flushLocked() error {
	p := db.persist
	if p == nil {
		return nil
	}
	if p.unlogged {
		// Bulk rebuild: write everything directly; endBulkLoad will
		// checkpoint when the rebuild is complete.
		if err := p.pool.FlushAll(); err != nil {
			return err
		}
		return db.writeCatalogLocked(p.lastLSN)
	}
	return db.checkpointLocked(true)
}

// Close flushes and releases a disk-backed database. In-memory databases
// need no Close, but calling it is harmless.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.persist == nil {
		return nil
	}
	p := db.persist
	err := db.flushLocked()
	if werr := p.wal.Close(); err == nil {
		err = werr
	}
	if perr := p.pg.Close(); err == nil {
		err = perr
	}
	db.persist = nil
	return err
}
