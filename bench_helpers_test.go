package walrus_test

import (
	"path/filepath"
	"testing"

	"walrus/internal/rstar"
	"walrus/internal/store"
)

// newBenchPager builds a paged R*-tree node store in a temp directory.
func newBenchPager(b *testing.B) (rstar.NodeStore, error) {
	b.Helper()
	pg, err := store.Create(filepath.Join(b.TempDir(), "bench.db"), store.DefaultPageSize)
	if err != nil {
		return nil, err
	}
	b.Cleanup(func() { pg.Close() })
	pool, err := store.NewBufferPool(pg, 128)
	if err != nil {
		return nil, err
	}
	return rstar.NewPagedStore(pg, pool, 12)
}
