// Command walrus-query runs a similarity query against a disk-backed
// WALRUS index built by walrus-index.
//
// Usage:
//
//	walrus-query -index idx/ -image data/flowers-0003.ppm -eps 0.085 -k 14
//
// The query image may be PPM/PGM (decoded natively) or PNG/JPEG/GIF
// (decoded with the standard library).
package main

import (
	"context"
	"flag"
	"fmt"
	"image"
	_ "image/gif"
	_ "image/jpeg"
	_ "image/png"
	"log"
	"os"
	"strings"
	"time"

	"walrus"
	"walrus/internal/imgio"
	"walrus/internal/match"
	"walrus/internal/obs"
	"walrus/internal/obscli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("walrus-query: ")
	var (
		index   = flag.String("index", "idx", "index directory")
		imgPath = flag.String("image", "", "query image path (PPM, PNG, JPEG or GIF)")
		eps     = flag.Float64("eps", 0.085, "matching epsilon")
		tau     = flag.Float64("tau", 0, "similarity threshold")
		k       = flag.Int("k", 14, "number of results")
		matcher = flag.String("matcher", "quick", "image matcher: quick, greedy, exact or assignment")
		sceneXY = flag.String("scene", "", "query with a sub-rectangle only: x,y,w,h (user-specified scene)")
		durable = flag.String("durability", "", "override the index's WAL durability policy: always, group or none")
		explain = flag.Bool("explain", false, "print the stage-by-stage candidate funnel after the results")
		prefilt = flag.Bool("prefilter", false, "enable the binary-signature prefilter tier between probe and scoring")
		cacheSz = flag.Int("cache-size", 0, "version-keyed result cache capacity in queries (0 disables)")
		repeat  = flag.Int("repeat", 1, "run the query N times (with -cache-size, later runs hit the cache)")
	)
	obsFlags := obscli.Register()
	logFlags := obscli.RegisterLog()
	flag.Parse()
	if *imgPath == "" {
		log.Fatal("missing -image")
	}
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	reg, obsStop, err := obsFlags.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer obsStop()

	im, err := loadImage(*imgPath)
	if err != nil {
		log.Fatal(err)
	}
	db, err := openIndex(*index, reg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if *durable != "" {
		pol, err := walrus.ParseDurability(*durable)
		if err != nil {
			log.Fatal(err)
		}
		db.SetDurability(pol)
	}

	if *cacheSz > 0 {
		db.SetCacheSize(*cacheSz)
	}

	params := walrus.DefaultQueryParams()
	params.Epsilon = *eps
	params.Tau = *tau
	params.Limit = *k
	params.Prefilter = *prefilt
	switch *matcher {
	case "quick":
		params.Matcher = match.Quick
	case "greedy":
		params.Matcher = match.Greedy
	case "exact":
		params.Matcher = match.Exact
	case "assignment":
		params.Matcher = match.Assignment
	default:
		log.Fatalf("unknown matcher %q", *matcher)
	}

	ctx := context.Background()
	var qt *walrus.QueryTrace
	if *explain || logFlags.SlowQueryMS > 0 {
		ctx, qt = walrus.WithQueryTrace(ctx)
	}
	var x, y, w, h int
	if *sceneXY != "" {
		if _, err := fmt.Sscanf(*sceneXY, "%d,%d,%d,%d", &x, &y, &w, &h); err != nil {
			log.Fatalf("bad -scene %q: %v", *sceneXY, err)
		}
	}
	var matches []walrus.Match
	var stats walrus.QueryStats
	for run := 0; run < *repeat; run++ {
		if *sceneXY != "" {
			matches, stats, err = db.QuerySceneContext(ctx, im, x, y, w, h, params)
		} else {
			matches, stats, err = db.QueryContext(ctx, im, params)
		}
		if err != nil {
			log.Fatal(err)
		}
		if *repeat > 1 {
			outcome := stats.Cache
			if outcome == "" {
				outcome = "uncached"
			}
			fmt.Printf("run %d: %s, %s\n", run+1, outcome, stats.Elapsed)
		}
	}
	fmt.Printf("query: %d regions, %d matching regions over %d candidate images, %s\n",
		stats.QueryRegions, stats.RegionsRetrieved, stats.CandidateImages, stats.Elapsed)
	fmt.Printf("%-5s %-24s %12s %10s\n", "rank", "image", "similarity", "regions")
	for i, m := range matches {
		fmt.Printf("%-5d %-24s %12.4f %10d\n", i+1, m.ID, m.Similarity, m.MatchingRegions)
	}
	if *explain {
		printExplain(qt)
	}
	if logFlags.SlowQueryMS > 0 && stats.Elapsed >= logFlags.SlowQueryThreshold() {
		logger.Warn("slow query",
			"trace", qt.TraceID,
			"elapsed", stats.Elapsed,
			"epsilon", qt.Params.Epsilon,
			"tau", qt.Params.Tau,
			"query_regions", qt.QueryRegions,
			"regions_retrieved", stats.RegionsRetrieved,
			"candidates", stats.CandidateImages,
			"matches", qt.Matches)
	}
}

// printExplain renders the candidate funnel as a table: one row per
// pipeline stage, then one per shard when the index is sharded.
func printExplain(qt *walrus.QueryTrace) {
	fmt.Printf("\nexplain: %d query regions", qt.QueryRegions)
	if qt.TraceID != "" {
		fmt.Printf(", trace %s", qt.TraceID)
	}
	fmt.Printf("\n%-10s %8s %8s %11s %7s %12s\n", "stage", "in", "out", "index_hits", "nodes", "time")
	for _, st := range qt.Stages {
		hits, nodes := "-", "-"
		if st.Stage == "probe" {
			hits = fmt.Sprintf("%d", st.IndexHits)
			nodes = fmt.Sprintf("%d", st.NodesVisited)
		}
		fmt.Printf("%-10s %8d %8d %11s %7s %12s\n",
			st.Stage, st.In, st.Out, hits, nodes, time.Duration(st.DurationNS))
	}
	if qt.Sharded {
		fmt.Printf("\n%-6s %8s %11s %7s %10s %11s %8s %12s %12s\n",
			"shard", "version", "index_hits", "nodes", "retrieved", "candidates", "matches", "probe", "score")
		for _, sh := range qt.Shards {
			fmt.Printf("%-6d %8d %11d %7d %10d %11d %8d %12s %12s\n",
				sh.Shard, sh.Version, sh.IndexHits, sh.NodesVisited, sh.RegionsRetrieved,
				sh.CandidateImages, sh.Matches, time.Duration(sh.ProbeNS), time.Duration(sh.ScoreNS))
		}
	}
}

// queryDB is the slice of the database API the query tool drives; both a
// plain DB and a Sharded fleet satisfy it.
type queryDB interface {
	QueryContext(ctx context.Context, im *imgio.Image, p walrus.QueryParams) ([]walrus.Match, walrus.QueryStats, error)
	QuerySceneContext(ctx context.Context, im *imgio.Image, x, y, w, h int, p walrus.QueryParams) ([]walrus.Match, walrus.QueryStats, error)
	SetMetrics(reg *obs.Registry)
	SetDurability(p walrus.DurabilityPolicy)
	SetCacheSize(n int)
	Close() error
}

// openIndex opens a plain or sharded index directory, auto-detected by
// the shard manifest, and reports any WAL replay the reopen performed.
func openIndex(dir string, reg *obs.Registry) (queryDB, error) {
	if walrus.IsSharded(dir) {
		s, err := walrus.OpenSharded(dir)
		if err != nil {
			return nil, err
		}
		s.SetMetrics(reg)
		if reports, ok := s.Recovery(); ok {
			for i, stats := range reports {
				if stats.Replayed {
					fmt.Fprintf(os.Stderr, "recovered shard %d: %d records replayed, %d torn tail bytes discarded\n",
						i, stats.RecordsScanned, stats.TornBytes)
				}
			}
		}
		return s, nil
	}
	db, err := walrus.Open(dir)
	if err != nil {
		return nil, err
	}
	db.SetMetrics(reg)
	if stats, ok := db.Recovery(); ok && stats.Replayed {
		fmt.Fprintf(os.Stderr, "recovered index: %d records replayed, %d torn tail bytes discarded\n",
			stats.RecordsScanned, stats.TornBytes)
	}
	return db, nil
}

func loadImage(path string) (*imgio.Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //walrus:lint-ignore errsink file opened read-only; close errors cannot lose data
	if strings.HasSuffix(path, ".ppm") || strings.HasSuffix(path, ".pgm") {
		return imgio.DecodePPM(f)
	}
	std, _, err := image.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	return imgio.FromStdImage(std), nil
}
