// Command walrus-gen generates a synthetic labeled image dataset (the
// stand-in for the paper's misc collection) into a directory of PPM files
// plus a labels.tsv index.
//
// Usage:
//
//	walrus-gen -out data/ -per-category 100 -seed 1999
package main

import (
	"errors"
	"flag"
	"fmt"
	"image/png"
	"log"
	"os"
	"path/filepath"
	"strings"

	"walrus/internal/dataset"
	"walrus/internal/imgio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("walrus-gen: ")
	var (
		out    = flag.String("out", "data", "output directory")
		per    = flag.Int("per-category", 100, "images per category")
		seed   = flag.Int64("seed", 1999, "generation seed")
		cats   = flag.String("categories", "", "comma-separated category subset (default: all)")
		format = flag.String("format", "ppm", "image format: ppm (loadable by walrus-index) or png")
	)
	flag.Parse()

	opts := dataset.DefaultOptions()
	opts.Seed = *seed
	opts.PerCategory = *per
	if *cats != "" {
		for _, c := range strings.Split(*cats, ",") {
			opts.Categories = append(opts.Categories, dataset.Category(strings.TrimSpace(c)))
		}
	}
	ds, err := dataset.Generate(opts)
	if err != nil {
		log.Fatal(err)
	}
	switch *format {
	case "ppm":
		if err := ds.Save(*out); err != nil {
			log.Fatal(err)
		}
	case "png":
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, it := range ds.Items {
			f, err := os.Create(filepath.Join(*out, it.ID+".png"))
			if err != nil {
				log.Fatal(err)
			}
			if err := png.Encode(f, imgio.ToStdImage(it.Image)); err != nil {
				log.Fatal(errors.Join(err, f.Close()))
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
	default:
		log.Fatalf("unknown format %q", *format)
	}
	fmt.Fprintf(os.Stdout, "wrote %d %s images to %s\n", len(ds.Items), *format, *out)
}
