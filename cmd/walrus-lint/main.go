// Command walrus-lint runs the repository's custom static analyzers
// (ctxflow, determinism, errsink, goroleak, hotalloc, lockdiscipline,
// obs, parallelconv, snapshotsafe) over the module.
//
// Usage:
//
//	walrus-lint [flags] [packages]
//
// With no package patterns it analyzes ./.... Packages are analyzed in
// parallel, and results are cached per package in .walrus-lint-cache at
// the module root (keyed by source and dependency content hashes) so a
// warm run skips type-checking unchanged packages; -no-cache disables
// the cache and -cache-path moves it. Findings listed in the baseline
// file (-baseline, default .walrus-lint-baseline at the module root if
// present) are tracked but not fatal; -write-baseline regenerates it
// from the current findings. Exit status is 0 when the tree is clean
// (after baseline subtraction), 1 when diagnostics were reported, and 2
// on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"walrus/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	flags := flag.NewFlagSet("walrus-lint", flag.ContinueOnError)
	jsonOut := flags.Bool("json", false, "emit diagnostics as a JSON array")
	sarifOut := flags.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log")
	only := flags.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flags.Bool("list", false, "list the available analyzers and exit")
	verbose := flags.Bool("v", false, "print per-analyzer timing and cache statistics to stderr")
	jobs := flags.Int("jobs", 0, "packages analyzed in parallel (0 = GOMAXPROCS)")
	noCache := flags.Bool("no-cache", false, "disable the per-package result cache")
	cachePath := flags.String("cache-path", "", "result cache file (default: .walrus-lint-cache at the module root)")
	baselinePath := flags.String("baseline", "", "baseline file of tracked-but-not-fatal findings (default: .walrus-lint-baseline at the module root, if present)")
	writeBaseline := flags.Bool("write-baseline", false, "write the current findings to the baseline file and exit")
	if err := flags.Parse(os.Args[1:]); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "walrus-lint: -json and -sarif are mutually exclusive")
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "walrus-lint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "walrus-lint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "walrus-lint: %v\n", err)
		return 2
	}

	opts := lint.RunOptions{Jobs: *jobs, Timings: *verbose}
	if !*noCache {
		opts.CachePath = *cachePath
		if opts.CachePath == "" {
			opts.CachePath = filepath.Join(loader.ModRoot, ".walrus-lint-cache")
		}
	}
	diags, stats, err := lint.RunModule(loader, flags.Args(), analyzers, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "walrus-lint: %v\n", err)
		return 2
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "walrus-lint: %d packages, %d cached, %d analyzed in %v\n",
			stats.Packages, stats.CacheHits, stats.CacheMisses, stats.Elapsed.Round(1e6))
		names := make([]string, 0, len(stats.Analyzers))
		for name := range stats.Analyzers {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "walrus-lint:   %-16s %v\n", name, stats.Analyzers[name].Round(1e3))
		}
	}

	blPath := *baselinePath
	if blPath == "" {
		blPath = filepath.Join(loader.ModRoot, ".walrus-lint-baseline")
	}
	if *writeBaseline {
		f, err := os.Create(blPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "walrus-lint: %v\n", err)
			return 2
		}
		werr := lint.WriteBaseline(f, loader.ModRoot, diags)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "walrus-lint: %v\n", werr)
			return 2
		}
		fmt.Fprintf(os.Stderr, "walrus-lint: wrote %d findings to %s\n", len(diags), blPath)
		return 0
	}
	baseline, err := lint.LoadBaseline(blPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "walrus-lint: %v\n", err)
		return 2
	}
	diags, absorbed := baseline.Apply(loader.ModRoot, diags)
	if *verbose && absorbed > 0 {
		fmt.Fprintf(os.Stderr, "walrus-lint: %d findings absorbed by baseline %s\n", absorbed, blPath)
	}

	switch {
	case *jsonOut:
		err = lint.WriteJSON(os.Stdout, diags)
	case *sarifOut:
		err = lint.WriteSARIF(os.Stdout, loader.ModRoot, analyzers, diags)
	default:
		err = lint.WriteText(os.Stdout, loader.ModRoot, diags)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "walrus-lint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
