// Command walrus-lint runs the repository's custom static analyzers
// (determinism, errsink, lockdiscipline, parallelconv, snapshotsafe)
// over the module.
//
// Usage:
//
//	walrus-lint [-json] [-only analyzer[,analyzer]] [packages]
//
// With no package patterns it analyzes ./.... Exit status is 0 when the
// tree is clean, 1 when diagnostics were reported, and 2 on usage or
// load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"walrus/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	flags := flag.NewFlagSet("walrus-lint", flag.ContinueOnError)
	jsonOut := flags.Bool("json", false, "emit diagnostics as a JSON array")
	only := flags.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flags.Bool("list", false, "list the available analyzers and exit")
	if err := flags.Parse(os.Args[1:]); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "walrus-lint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "walrus-lint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "walrus-lint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(flags.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "walrus-lint: %v\n", err)
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "walrus-lint: %v\n", err)
			return 2
		}
	} else if err := lint.WriteText(os.Stdout, loader.ModRoot, diags); err != nil {
		fmt.Fprintf(os.Stderr, "walrus-lint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
