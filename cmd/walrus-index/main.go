// Command walrus-index builds a disk-backed WALRUS index over a dataset
// directory produced by walrus-gen (or any directory of PPM files with a
// labels.tsv).
//
// Usage:
//
//	walrus-index -data data/ -index idx/ -window 64 -cluster-eps 0.05
//	walrus-index -data data/ -index idx/ -shards 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"walrus"
	"walrus/internal/colorspace"
	"walrus/internal/dataset"
	"walrus/internal/obs"
	"walrus/internal/obscli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("walrus-index: ")
	var (
		data       = flag.String("data", "data", "dataset directory (from walrus-gen)")
		index      = flag.String("index", "idx", "index directory to create")
		window     = flag.Int("window", 64, "sliding window size (power of two)")
		minWindow  = flag.Int("min-window", 0, "smallest window size (default: same as -window)")
		sig        = flag.Int("signature", 2, "signature side s (power of two)")
		step       = flag.Int("step", 8, "sliding step t (power of two)")
		clusterEps = flag.Float64("cluster-eps", 0.05, "BIRCH clustering epsilon")
		space      = flag.String("space", "YCC", "color space (RGB, YCC, YIQ, YUV, HSV, XYZ)")
		bbox       = flag.Bool("bbox", false, "index signature bounding boxes instead of centroids")
		merge      = flag.Bool("merge-regions", false, "agglomeratively merge clusters after BIRCH")
		refine     = flag.Int("refine-iterations", 0, "centroid refinement passes after clustering")
		fineSig    = flag.Int("fine-signature", 0, "store finer NxN signatures for the refined matching phase (0 = off)")
		durability = flag.String("durability", "group", "WAL durability policy: always, group or none")
		shards     = flag.Int("shards", 1, "partition the index into N hash shards for parallel writes")
	)
	obsFlags := obscli.Register()
	flag.Parse()
	reg, obsStop, err := obsFlags.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer obsStop()

	sp, err := colorspace.Parse(*space)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := walrus.ParseDurability(*durability)
	if err != nil {
		log.Fatal(err)
	}
	opts := walrus.DefaultOptions()
	opts.Region.MaxWindow = *window
	opts.Region.MinWindow = *window
	if *minWindow > 0 {
		opts.Region.MinWindow = *minWindow
	}
	opts.Region.Signature = *sig
	opts.Region.Step = *step
	opts.Region.ClusterEps = *clusterEps
	opts.Region.Space = sp
	opts.Region.MergeRegions = *merge
	opts.Region.RefineIterations = *refine
	opts.Region.FineSignature = *fineSig
	opts.UseBBox = *bbox
	opts.Durability = pol

	ds, err := dataset.Load(*data)
	if err != nil {
		log.Fatal(err)
	}
	var db ingestDB
	if *shards > 1 {
		opts.Shards = *shards
		db, err = walrus.CreateSharded(*index, opts)
	} else {
		db, err = walrus.Create(*index, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	db.SetMetrics(reg)
	start := time.Now()
	// Extract regions in parallel; insertion order stays deterministic.
	const chunk = 100
	items := make([]walrus.BatchItem, 0, chunk)
	for i, it := range ds.Items {
		items = append(items, walrus.BatchItem{ID: it.ID, Image: it.Image})
		if len(items) == chunk || i == len(ds.Items)-1 {
			if err := db.AddBatch(items, 0); err != nil {
				log.Fatalf("indexing: %v", err)
			}
			items = items[:0]
			fmt.Fprintf(os.Stderr, "  indexed %d/%d images\n", i+1, len(ds.Items))
		}
	}
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d images (%d regions) into %s in %s\n",
		len(ds.Items), dbRegions(*index), *index, time.Since(start).Round(time.Millisecond))
}

// ingestDB is the slice of the database API the indexer drives; both a
// plain DB and a Sharded fleet satisfy it.
type ingestDB interface {
	AddBatch(items []walrus.BatchItem, workers int) error
	SetMetrics(reg *obs.Registry)
	Close() error
}

// dbRegions reopens the index briefly to report the region count. A
// dirty reopen (crash during a previous run) also reports what recovery
// replayed. Sharded indexes are auto-detected by their manifest.
func dbRegions(dir string) int {
	if walrus.IsSharded(dir) {
		return shardedRegions(dir)
	}
	db, err := walrus.Open(dir)
	if err != nil {
		return 0
	}
	// Read-only reopen: a close error here cannot lose index data, but
	// surface it anyway rather than silently eating it.
	defer func() {
		if cerr := db.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "  closing reopened index: %v\n", cerr)
		}
	}()
	if stats, ok := db.Recovery(); ok && stats.Replayed {
		fmt.Fprintf(os.Stderr,
			"  recovered index: %d records scanned, %d pages reapplied, %d catalog deltas, %d torn tail bytes discarded\n",
			stats.RecordsScanned, stats.PagesApplied, stats.AppRecords, stats.TornBytes)
	}
	return db.NumRegions()
}

// shardedRegions is dbRegions for a sharded index: each shard replays
// its own WAL on reopen, so recovery is reported per shard.
func shardedRegions(dir string) int {
	s, err := walrus.OpenSharded(dir)
	if err != nil {
		return 0
	}
	defer func() {
		if cerr := s.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "  closing reopened index: %v\n", cerr)
		}
	}()
	if reports, ok := s.Recovery(); ok {
		for i, stats := range reports {
			if !stats.Replayed {
				continue
			}
			fmt.Fprintf(os.Stderr,
				"  recovered shard %d: %d records scanned, %d pages reapplied, %d catalog deltas, %d torn tail bytes discarded\n",
				i, stats.RecordsScanned, stats.PagesApplied, stats.AppRecords, stats.TornBytes)
		}
	}
	return s.NumRegions()
}
