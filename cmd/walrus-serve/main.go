// walrus-serve serves a WALRUS database over HTTP with the production
// front-end of internal/serve: admission control with bounded queueing,
// per-request deadlines, write coalescing, and graceful drain on
// SIGTERM/SIGINT.
//
// Point it at a database directory — sharded or single-store layouts are
// auto-detected — or run it with -mem to serve a synthetic in-memory
// dataset:
//
//	walrus-serve -db /data/walrus -addr :8080
//	walrus-serve -mem -per-category 25 -addr :8080
//
// Metrics: pass -obs-addr to serve the observability mux on a side
// listener; when set, /metrics and /debug/... are also mounted on the
// serving address itself.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"walrus"
	"walrus/internal/dataset"
	"walrus/internal/obscli"
	"walrus/internal/serve"
)

func main() {
	log.SetFlags(0)
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		dir           = flag.String("db", "", "database directory (sharded or single-store, auto-detected)")
		mem           = flag.Bool("mem", false, "serve an in-memory database preloaded with the synthetic dataset")
		perCat        = flag.Int("per-category", 10, "with -mem: dataset images per category")
		concurrency   = flag.Int("concurrency", 0, "max concurrently executing requests (0 = GOMAXPROCS)")
		queue         = flag.Int("queue", 0, "admission wait-queue bound before 429 (0 = 4x concurrency)")
		timeout       = flag.Duration("timeout", 0, "per-request deadline (0 = 30s, negative = none)")
		coalesceBatch = flag.Int("coalesce-batch", 0, "max images per coalesced write flush (0 = 64)")
		coalesceWait  = flag.Duration("coalesce-wait", 0, "max age of a pending write before a partial flush (0 = 2ms)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests during graceful drain")
		prefilt       = flag.Bool("prefilter", false, "enable the binary-signature prefilter tier by default (per-request prefilter= overrides)")
		cacheSz       = flag.Int("cache-size", 0, "version-keyed result cache capacity in queries (0 disables)")
		obsFlags      = obscli.Register()
		logFlags      = obscli.RegisterLog()
	)
	flag.Parse()

	if (*dir == "") == !*mem {
		log.Fatal("walrus-serve: exactly one of -db or -mem is required")
	}

	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	reg, obsStop, err := obsFlags.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer obsStop()

	var backend serve.Backend
	if *mem {
		opts := dataset.DefaultOptions()
		opts.PerCategory = *perCat
		ds, err := dataset.Generate(opts)
		if err != nil {
			log.Fatal(err)
		}
		db, err := walrus.New(walrus.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		items := make([]walrus.BatchItem, len(ds.Items))
		for i, it := range ds.Items {
			items[i] = walrus.BatchItem{ID: it.ID, Image: it.Image}
		}
		log.Printf("indexing %d synthetic images...", len(items))
		if err := db.AddBatch(items, 0); err != nil {
			log.Fatal(err)
		}
		backend = db
	} else {
		backend, err = serve.Open(*dir)
		if err != nil {
			log.Fatal(err)
		}
		layout := "single-store"
		if walrus.IsSharded(*dir) {
			layout = "sharded"
		}
		log.Printf("opened %s database at %s (%d images)", layout, *dir, backend.Len())
	}
	if reg != nil {
		switch b := backend.(type) {
		case *walrus.DB:
			b.SetMetrics(reg)
		case *walrus.Sharded:
			b.SetMetrics(reg)
		}
	}
	if *cacheSz > 0 {
		switch b := backend.(type) {
		case *walrus.DB:
			b.SetCacheSize(*cacheSz)
		case *walrus.Sharded:
			b.SetCacheSize(*cacheSz)
		default:
			log.Fatal("walrus-serve: -cache-size requires a walrus.DB or walrus.Sharded backend")
		}
	}
	defaults := walrus.DefaultQueryParams()
	defaults.Prefilter = *prefilt

	srv, err := serve.New(serve.Config{
		Backend:              backend,
		DefaultParams:        defaults,
		MaxConcurrentQueries: *concurrency,
		QueueLimit:           *queue,
		RequestTimeout:       *timeout,
		CoalesceMaxBatch:     *coalesceBatch,
		CoalesceMaxWait:      *coalesceWait,
		Metrics:              reg,
		Logf:                 log.Printf,
		Log:                  logger,
		SlowQueryThreshold:   logFlags.SlowQueryThreshold(),
	})
	if err != nil {
		log.Fatal(err)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() {
		sig := <-sigs
		log.Printf("received %s, draining (up to %s)...", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		done <- srv.Drain(ctx)
	}()

	log.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatal(err)
	}
	// ListenAndServe returned nil: a drain is in progress; wait for it.
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	log.Print("drained cleanly")
}
