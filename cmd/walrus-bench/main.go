// Command walrus-bench regenerates the tables and figures of the WALRUS
// paper's evaluation (Section 6) and prints them in the paper's layout.
//
// Usage:
//
//	walrus-bench                 # run everything at default scale
//	walrus-bench -exp fig6a      # one experiment
//	walrus-bench -per-category 100 -exp table1
//
// Experiments: fig6a, fig6b, fig7, fig8, table1, regions, matchers,
// robust, precision, indexing, epsilon, parallel, durability,
// obs-overhead, snapshot, shard, serve, all. The shard and serve
// experiments need no dataset: they synthesize their own images and
// write BENCH_shard.json / BENCH_serve.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"walrus/internal/dataset"
	"walrus/internal/experiments"
	"walrus/internal/obscli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("walrus-bench: ")
	var (
		exp         = flag.String("exp", "all", "experiment: fig6a, fig6b, fig7, fig8, table1, regions, matchers, robust, precision, indexing, epsilon, parallel, durability, obs-overhead, explain, filter, snapshot, shard, serve, all")
		imgSize     = flag.Int("image-size", 256, "image side for Figure 6 (paper: 256)")
		maxWin      = flag.Int("max-window", 128, "largest window for Figure 6(a) (paper: 128)")
		maxSig      = flag.Int("max-signature", 32, "largest signature for Figure 6(b) (paper: 32)")
		perCat      = flag.Int("per-category", 40, "dataset images per category for retrieval experiments")
		seed        = flag.Int64("seed", 1999, "dataset seed")
		topK        = flag.Int("k", 14, "result count for Figures 7/8 (paper: 14)")
		regimgs     = flag.Int("region-images", 6, "images sampled for the §6.6 region-count sweep")
		par         = flag.Int("parallelism", 0, "worker pool size for the parallel experiment (0 = GOMAXPROCS)")
		obsOut      = flag.String("obs-json", "BENCH_obs.json", "output file for the obs-overhead measurement")
		explainOut  = flag.String("explain-json", "BENCH_explain.json", "output file for the explain-overhead measurement")
		filterOut   = flag.String("filter-json", "BENCH_filter.json", "output file for the prefilter/result-cache measurement")
		snapOut     = flag.String("snapshot-json", "BENCH_snapshot.json", "output file for the snapshot churn measurement")
		shardOut    = flag.String("shard-json", "BENCH_shard.json", "output file for the shard write-scaling measurement")
		shardBase   = flag.Int("shard-base", 100000, "preloaded signatures for the shard experiment")
		shardWrites = flag.Int("shard-writes", 300, "timed marginal writes per shard count for the shard experiment")

		serveOut       = flag.String("serve-json", "BENCH_serve.json", "output file for the serve load measurement")
		serveClients   = flag.Int("serve-clients", 1000, "concurrent clients for the serve experiment")
		serveSeconds   = flag.Int("serve-seconds", 5, "load duration for the serve experiment")
		serveWriteFrac = flag.Float64("serve-write-frac", 0.2, "fraction of serve-experiment requests that are ingests")
	)
	obsFlags := obscli.Register()
	flag.Parse()
	reg, obsStop, err := obsFlags.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer obsStop()
	if !isKnown(*exp) {
		log.Fatalf("unknown experiment %q", *exp)
	}
	want := func(name string) bool { return *exp == "all" || *exp == name }
	out := os.Stdout

	if want("fig6a") {
		fmt.Fprintf(out, "== Figure 6(a): signature computation vs window size (image %dx%d, s=2, t=1) ==\n", *imgSize, *imgSize)
		rows, err := experiments.Fig6a(*imgSize, *maxWin)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintFig6(out, "", "window", rows)
		fmt.Fprintln(out)
	}
	if want("fig6b") {
		fmt.Fprintf(out, "== Figure 6(b): signature computation vs signature size (image %dx%d, window %d, t=1) ==\n", *imgSize, *imgSize, *maxWin)
		rows, err := experiments.Fig6b(*imgSize, *maxWin, *maxSig)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintFig6(out, "", "signature", rows)
		fmt.Fprintln(out)
	}

	if want("shard") {
		fmt.Fprintln(out, "== Sharded writes: marginal write throughput vs shard count ==")
		res, err := experiments.ShardScaling(*shardBase, *shardWrites, []int{1, 2, 4})
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintShardScaling(out, res)
		if !res.Identical {
			log.Fatal("sharded query results diverge across shard counts")
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*shardOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "wrote %s\n\n", *shardOut)
	}

	if want("serve") {
		fmt.Fprintf(out, "== Serving: %d concurrent clients, mixed search/ingest load ==\n", *serveClients)
		res, err := experiments.ServeBench(*serveClients, *serveSeconds, *serveWriteFrac)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintServeBench(out, res)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*serveOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "wrote %s\n\n", *serveOut)
	}

	needDataset := want("fig7") || want("fig8") || want("table1") || want("regions") || want("matchers") || want("robust") || want("precision") || want("indexing") || want("epsilon") || want("parallel") || want("durability") || want("obs-overhead") || want("explain") || want("filter") || want("snapshot")
	if !needDataset {
		return
	}
	fmt.Fprintf(out, "generating dataset: %d categories x %d images (seed %d)...\n",
		len(dataset.Categories()), *perCat, *seed)
	opts := dataset.DefaultOptions()
	opts.Seed = *seed
	opts.PerCategory = *perCat
	ds, err := dataset.Generate(opts)
	if err != nil {
		log.Fatal(err)
	}
	flowers := ds.ByCategory(dataset.Flowers)
	if len(flowers) == 0 {
		log.Fatal("dataset has no flower images")
	}
	// The paper's query 866 is "red flowers with green leaves"; any flowers
	// item plays that role.
	query := flowers[0]
	fmt.Fprintf(out, "query image: %s (%s)\n\n", query.ID, query.Category)

	if want("fig7") {
		fmt.Fprintln(out, "== Figure 7: images found by WBIIS (single whole-image signature) ==")
		res, err := experiments.Fig7(ds, query, *topK)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintRetrieval(out, res)
		fmt.Fprintln(out)
	}

	cfg := experiments.PaperWalrusConfig()
	if want("fig8") || want("table1") || want("matchers") || want("epsilon") {
		fmt.Fprintln(out, "building WALRUS index (paper parameters: 64x64 windows, eps_c=0.05, 2x2 signatures, YCC)...")
		start := time.Now()
		wdb, err := experiments.BuildWalrusDB(ds, cfg.Options)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "indexed %d images, %d regions in %s\n\n", wdb.Len(), wdb.NumRegions(), time.Since(start).Round(time.Millisecond))

		if want("fig8") {
			fmt.Fprintln(out, "== Figure 8: images found by WALRUS (region signatures, YCC) ==")
			res, err := experiments.Fig8(wdb, query, cfg.Params, *topK)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintRetrieval(out, res)
			fmt.Fprintln(out)
		}
		if want("table1") {
			fmt.Fprintln(out, "== Table 1: query response time and selectivity vs epsilon ==")
			rows, err := experiments.Table1(wdb, query.Image, cfg.Params, []float64{0.05, 0.06, 0.07, 0.08, 0.09})
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintTable1(out, rows)
			fmt.Fprintln(out)
		}
		if want("epsilon") {
			fmt.Fprintln(out, "== Querying-epsilon sweep: precision vs selectivity ==")
			rows, err := experiments.EpsilonSweep(wdb, ds, 2, *topK, []float64{0.05, 0.065, 0.085, 0.12, 0.2})
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintEpsilonSweep(out, *topK, rows)
			fmt.Fprintln(out)
		}
		if want("matchers") {
			fmt.Fprintln(out, "== Ablation: quick vs greedy vs exact image matching ==")
			rows, err := experiments.MatcherAblation(wdb, query.Image, cfg.Params)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintMatcherAblation(out, rows)
			fmt.Fprintln(out)
		}
	}

	if want("parallel") {
		fmt.Fprintln(out, "== Parallel pipeline: ingest speedup and query determinism ==")
		rows, identical, err := experiments.ParallelSpeedup(ds, cfg.Options, *par)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintParallel(out, rows, identical)
		if !identical {
			log.Fatal("parallel and serial query results differ")
		}
		fmt.Fprintln(out)
	}

	if want("obs-overhead") {
		fmt.Fprintln(out, "== Observability overhead: query hot path with registry detached vs attached ==")
		res, err := experiments.ObsOverhead(ds, cfg.Options, 24, 20, 5, reg)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintObsOverhead(out, res)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*obsOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "wrote %s\n\n", *obsOut)
	}

	if want("explain") {
		fmt.Fprintln(out, "== EXPLAIN overhead: query hot path with tracing off, live spans, and the funnel accumulator ==")
		res, err := experiments.ExplainOverhead(ds, cfg.Options, 24, 20, 5)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintExplainOverhead(out, res)
		if !res.FunnelConsistent {
			log.Fatal("explain funnel failed its consistency invariants")
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*explainOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "wrote %s\n\n", *explainOut)
	}

	if want("filter") {
		fmt.Fprintln(out, "== Coarse-to-fine tiers: prefilter candidate reduction and warm-cache latency ==")
		res, err := experiments.FilterBench(ds, cfg.Options, 24, 20, 5)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintFilterBench(out, res)
		if !res.Identical {
			log.Fatal("prefiltered ranking diverges from the exact pipeline")
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*filterOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "wrote %s\n\n", *filterOut)
	}

	if want("snapshot") {
		fmt.Fprintln(out, "== Snapshot isolation: query latency while the catalog churns ==")
		res, err := experiments.SnapshotChurn(ds, cfg.Options, 24, 60, 4)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintSnapshotChurn(out, res)
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*snapOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "wrote %s\n\n", *snapOut)
	}

	if want("durability") {
		fmt.Fprintln(out, "== Durability: WAL fsync policy vs ingest throughput ==")
		rows, err := experiments.DurabilitySweep(ds, cfg.Options)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintDurability(out, rows)
		fmt.Fprintln(out)
	}

	if want("indexing") {
		fmt.Fprintln(out, "== Indexing throughput: sequential vs parallel vs STR bulk load ==")
		rows, err := experiments.IndexingThroughput(ds, cfg.Options)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintIndexing(out, rows)
		fmt.Fprintln(out)
	}

	if want("precision") {
		fmt.Fprintln(out, "== Mean precision across systems (WALRUS vs WBIIS vs JFS vs histogram) ==")
		rows, err := experiments.MeanPrecision(ds, cfg, 2, *topK)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintPrecision(out, *topK, rows)
		fmt.Fprintln(out)
	}

	if want("robust") {
		fmt.Fprintln(out, "== Robustness: transformed-query rank of the original, WALRUS vs WBIIS ==")
		rows, err := experiments.Robustness(ds, cfg, query)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintRobustness(out, query.ID, rows)
		fmt.Fprintln(out)
	}

	if want("regions") {
		fmt.Fprintln(out, "== Section 6.6: regions per image vs cluster epsilon (YCC vs RGB) ==")
		n := *regimgs
		if n > len(ds.Items) {
			n = len(ds.Items)
		}
		sample := make([]dataset.Item, 0, n)
		stride := len(ds.Items) / n
		if stride == 0 {
			stride = 1
		}
		for i := 0; i < len(ds.Items) && len(sample) < n; i += stride {
			sample = append(sample, ds.Items[i])
		}
		rows, err := experiments.RegionsPerImage(sample, cfg.Options.Region, []float64{0.025, 0.05, 0.075, 0.1})
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintRegionsPerImage(out, rows)
		fmt.Fprintln(out)
	}
}

func isKnown(e string) bool {
	for _, k := range strings.Fields("fig6a fig6b fig7 fig8 table1 regions matchers robust precision indexing epsilon parallel durability obs-overhead explain filter snapshot shard serve all") {
		if e == k {
			return true
		}
	}
	return false
}
