module walrus

go 1.22
