package walrus

import (
	"os"
	"path/filepath"
	"testing"
)

// TestOpenRejectsCorruptCatalog: garbage in the catalog file fails cleanly.
func TestOpenRejectsCorruptCatalog(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("a", scene(green, red, 10, 10, 40)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, catalogFileName), []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted corrupt catalog")
	}
}

// TestOpenRejectsMissingIndexFile: a catalog without its page file fails.
func TestOpenRejectsMissingIndexFile(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("a", scene(green, red, 10, 10, 40)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, indexFileName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted missing index file")
	}
}

// TestOpenDetectsCorruptIndexPages: flipped bytes inside node pages
// surface as checksum errors on query.
func TestOpenDetectsCorruptIndexPages(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := db.Add(string(rune('a'+i)), scene(green, red, i*10, i*10, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, indexFileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 4096 + 50; off < len(raw); off += 4096 {
		raw[off] ^= 0xA5
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		// Acceptable: corruption may already surface at open time.
		return
	}
	defer re.Close()
	if _, _, err := re.Query(scene(green, red, 10, 10, 40), DefaultQueryParams()); err == nil {
		t.Fatal("query succeeded over corrupted index pages")
	}
}

// TestFlushThenReopenMidLife: Flush makes the current state durable even
// without Close.
func TestFlushThenReopenMidLife(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("a", scene(green, red, 10, 10, 40)); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Reopen from the flushed state while the original handle still exists
	// (read-only inspection of the durable snapshot).
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 {
		t.Fatalf("flushed snapshot has %d images", re.Len())
	}
	re.Close()
	db.Close()
}

// TestRemoveSurvivesReopen: tombstones persist.
func TestRemoveSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("keep", scene(green, red, 10, 10, 40)); err != nil {
		t.Fatal(err)
	}
	if err := db.Add("drop", scene(gray, blue, 10, 10, 40)); err != nil {
		t.Fatal(err)
	}
	if ok, err := db.Remove("drop"); err != nil || !ok {
		t.Fatalf("Remove: %v %v", ok, err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("Len after reopen = %d", re.Len())
	}
	matches, _, err := re.Query(scene(gray, blue, 10, 10, 40), DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m.ID == "drop" {
			t.Fatal("removed image resurrected by reopen")
		}
	}
}

// TestDiskRoundTripWithFineSignatures: fine signatures survive the heap
// serialization and the refined matching phase works after reopen.
func TestDiskRoundTripWithFineSignatures(t *testing.T) {
	dir := t.TempDir()
	o := testOptions()
	o.Region.FineSignature = 8
	db, err := Create(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("a", scene(green, red, 20, 20, 50)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	regions, ok := re.RegionsOf("a")
	if !ok || len(regions) == 0 {
		t.Fatal("no regions after reopen")
	}
	for _, r := range regions {
		if len(r.Fine) != 3*8*8 {
			t.Fatalf("fine signature lost: dim %d", len(r.Fine))
		}
	}
	p := DefaultQueryParams()
	p.Refine = true
	matches, _, err := re.Query(scene(green, red, 20, 20, 50), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Similarity < 0.95 {
		t.Fatalf("refined query after reopen: %+v", matches)
	}
}

// TestDiskAddBatch: heap-backed payload storage works through the batch
// path too.
func TestDiskAddBatch(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	items := []BatchItem{
		{"x", scene(green, red, 10, 10, 40)},
		{"y", scene(gray, blue, 30, 30, 40)},
	}
	if err := db.AddBatch(items, 2); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("Len = %d", re.Len())
	}
	matches, _, err := re.Query(scene(gray, blue, 30, 30, 40), DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].ID != "y" {
		t.Fatalf("batch-indexed query after reopen: %+v", matches)
	}
}
