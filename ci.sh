#!/bin/sh
# CI gate for the WALRUS repo. Tiers (each prints its wall time; the
# script aborts at the first failing tier, so the cheap static tiers
# gate the expensive race tiers):
#   0. build — a compile error should read as a compile error, not as a
#      lint loader failure, so the build gates everything
#   0. formatting + static analysis (gofmt, go vet, walrus-lint — the
#      repo's own analyzers: ctxflow, determinism, errsink, goroleak,
#      hotalloc, lockdiscipline, obs, parallelconv, snapshotsafe; see
#      DESIGN.md "Static analysis"). walrus-lint runs with its
#      per-package result cache and subtracts the checked-in
#      .walrus-lint-baseline, so only new findings fail
#   1. race tier: go test -race -short — runs the concurrency stress
#      tests (mixed Add/Query/Remove) under the race detector on every PR
#   1b. obs tier: scrapes the live /metrics endpoint while the
#      Add/Query/Remove stress runs and fails on malformed Prometheus
#      text or expvar JSON (TestObsScrapeUnderLoad + the exposition
#      validator's own tests)
#   1c. snapshot tier: stresses snapshot acquire/release against
#      concurrent publication under the race detector and fails if the
#      active-snapshots gauge does not drain to zero (pin leak) or a
#      pinned version tears
#   1d. shard tier: runs the shard-count determinism matrix (every shard
#      count must reproduce the shards=1 oracle byte-for-byte), the
#      per-shard crash matrix and the cross-shard fan-out oracle under
#      the race detector
#   1e. explain tier: runs the trace/EXPLAIN suite under the race
#      detector — the 4-shard trace-completeness storm (single root, no
#      orphaned spans, funnel counts identical at every Parallelism),
#      the funnel determinism matrix (shards 1 vs 4), the span-ring
#      overflow counter, and the golden-file test pinning the
#      /v1/search?explain=1 JSON schema
#   1f. serve tier: exercises the HTTP front-end under the race detector
#      — handler contracts, admission saturation (429 + gauges draining
#      to zero), coalescer version atomicity, and the graceful-drain
#      no-acked-write-lost proof (plain and sharded backends) against a
#      live listener. The load harness itself runs via `walrus-bench
#      -exp serve` and writes BENCH_serve.json; it is not part of the
#      CI gate.
#   1g. filter tier: runs the prefilter determinism matrix (Parallelism
#      {1,8} x shards {1,4} must reproduce the no-prefilter oracle both
#      with accept-all bounds and at the default derived bounds) and the
#      result-cache protocol suite (hit/miss/bypass, write invalidation,
#      churn) under the race detector
#   2. full test suite
#   3. vulnerability scan (default, non-fatal): govulncheck runs on
#      every CI pass when available, installing a pinned version into
#      the local GOPATH when missing; findings and install failures are
#      reported but never fail the gate (WALRUS_CI_VULN=0 disables)
#   4. fuzz smoke (opt-in): WALRUS_CI_FUZZ=1 ./ci.sh runs each fuzz
#      target (PPM decoder, WAL replay) for a few seconds of random input
#      on top of their always-on seed corpora
set -eu
cd "$(dirname "$0")"

# tier NAME CMD...: announce the tier, run it (aborting the script on
# failure via set -e), and print its wall time.
tier() {
    _name="$1"
    shift
    echo "== $_name =="
    _start=$(date +%s)
    "$@"
    echo "-- $_name: $(($(date +%s) - _start))s"
}

check_gofmt() {
    unformatted=$(gofmt -l .)
    if [ -n "$unformatted" ]; then
        echo "gofmt needed on:" >&2
        echo "$unformatted" >&2
        return 1
    fi
}

run_vuln() {
    # Non-fatal by design: a scan finding (or a sandboxed CI host with no
    # network to install the tool) must not mask a red/green signal on
    # the code itself.
    vulncheck="$(command -v govulncheck || true)"
    if [ -z "$vulncheck" ]; then
        gobin="$(go env GOPATH)/bin"
        echo "govulncheck not installed; installing pinned version..."
        if go install golang.org/x/vuln/cmd/govulncheck@v1.1.4 2>/dev/null; then
            vulncheck="$gobin/govulncheck"
        else
            echo "govulncheck install failed (offline?); skipping scan"
            return 0
        fi
    fi
    if "$vulncheck" ./...; then
        echo "govulncheck: no known vulnerabilities"
    else
        echo "govulncheck reported findings (non-fatal; inspect above)"
    fi
}

tier "tier 0: build" go build ./...
tier "tier 0: gofmt" check_gofmt
tier "tier 0: go vet" go vet ./...
tier "tier 0: walrus-lint" go run ./cmd/walrus-lint -v ./...

tier "tier 1: race (short)" go test -race -short ./...
tier "tier 1: obs scrape during stress" go test -race -count=1 -run 'TestObsScrapeUnderLoad|TestObsCountDeterminism' .
tier "tier 1: obs exposition validators" go test -count=1 -run 'TestPrometheusOutputValidates|TestValidatePrometheusRejectsMalformed|TestHandlerEndpoints' ./internal/obs
tier "tier 1: snapshot (acquire/release vs publish, leak check)" go test -race -count=1 -run 'TestSnapshot' .
tier "tier 1: shard (determinism matrix, crash recovery, fan-out oracle)" go test -race -count=1 -run 'TestShard' .
tier "tier 1: explain (trace completeness, funnel determinism, schema golden)" go test -race -count=1 -run 'TestTrace|TestExplain' ./...
tier "tier 1: serve (handlers, admission, coalescing, graceful drain)" go test -race -count=1 -run 'TestServe' ./...
tier "tier 1: filter (prefilter determinism matrix, result-cache protocol)" go test -race -count=1 -run 'TestPrefilter|TestQueryCache' ./...

tier "tier 2: full tests" go test ./...

if [ "${WALRUS_CI_VULN:-1}" = "1" ]; then
    tier "tier 3: govulncheck (non-fatal)" run_vuln
fi

if [ "${WALRUS_CI_FUZZ:-0}" = "1" ]; then
    tier "tier 4: fuzz smoke (imgio)" go test -fuzz FuzzDecodePPM -fuzztime "${WALRUS_CI_FUZZTIME:-10s}" ./internal/imgio
    tier "tier 4: fuzz smoke (wal)" go test -fuzz FuzzReplayWAL -fuzztime "${WALRUS_CI_FUZZTIME:-10s}" ./internal/wal
fi

echo "CI OK"
