#!/bin/sh
# CI gate for the WALRUS repo. Tiers:
#   1. formatting + static analysis (gofmt, go vet)
#   2. build
#   3. race tier: go test -race -short — runs the concurrency stress
#      tests (mixed Add/Query/Remove) under the race detector on every PR
#   4. full test suite
#   5. fuzz smoke (opt-in): WALRUS_CI_FUZZ=1 ./ci.sh runs each fuzz
#      target (PPM decoder, WAL replay) for a few seconds of random input
#      on top of their always-on seed corpora
set -eu
cd "$(dirname "$0")"

echo "== tier 0: gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== tier 0: go vet =="
go vet ./...

echo "== tier 1: build =="
go build ./...

echo "== tier 1: race (short) =="
go test -race -short ./...

echo "== tier 1: full tests =="
go test ./...

if [ "${WALRUS_CI_FUZZ:-0}" = "1" ]; then
    echo "== tier 2: fuzz smoke =="
    go test -fuzz FuzzDecodePPM -fuzztime "${WALRUS_CI_FUZZTIME:-10s}" ./internal/imgio
    go test -fuzz FuzzReplayWAL -fuzztime "${WALRUS_CI_FUZZTIME:-10s}" ./internal/wal
fi

echo "CI OK"
