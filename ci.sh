#!/bin/sh
# CI gate for the WALRUS repo. Tiers:
#   1. formatting + static analysis (gofmt, go vet)
#   2. build
#   3. race tier: go test -race -short — runs the concurrency stress
#      tests (mixed Add/Query/Remove) under the race detector on every PR
#   4. full test suite
# A short smoke run of the PPM fuzz target can be added locally with:
#   go test -fuzz FuzzDecodePPM -fuzztime 30s ./internal/imgio
set -eu
cd "$(dirname "$0")"

echo "== tier 0: gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== tier 0: go vet =="
go vet ./...

echo "== tier 1: build =="
go build ./...

echo "== tier 1: race (short) =="
go test -race -short ./...

echo "== tier 1: full tests =="
go test ./...

echo "CI OK"
