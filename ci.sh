#!/bin/sh
# CI gate for the WALRUS repo. Tiers:
#   1. formatting + static analysis (gofmt, go vet, walrus-lint — the
#      repo's own analyzers: determinism, errsink, lockdiscipline, obs,
#      parallelconv, snapshotsafe; see DESIGN.md "Static analysis")
#   2. build
#   3. race tier: go test -race -short — runs the concurrency stress
#      tests (mixed Add/Query/Remove) under the race detector on every PR
#   3b. obs tier: scrapes the live /metrics endpoint while the
#      Add/Query/Remove stress runs and fails on malformed Prometheus
#      text or expvar JSON (TestObsScrapeUnderLoad + the exposition
#      validator's own tests)
#   3c. snapshot tier: stresses snapshot acquire/release against
#      concurrent publication under the race detector and fails if the
#      active-snapshots gauge does not drain to zero (pin leak) or a
#      pinned version tears
#   3d. shard tier: runs the shard-count determinism matrix (every shard
#      count must reproduce the shards=1 oracle byte-for-byte), the
#      per-shard crash matrix and the cross-shard fan-out oracle under
#      the race detector
#   3e. serve tier: exercises the HTTP front-end under the race detector
#      — handler contracts, admission saturation (429 + gauges draining
#      to zero), coalescer version atomicity, and the graceful-drain
#      no-acked-write-lost proof against a live listener. The load
#      harness itself runs via `walrus-bench -exp serve` and writes
#      BENCH_serve.json; it is not part of the CI gate.
#   4. full test suite
#   5. fuzz smoke (opt-in): WALRUS_CI_FUZZ=1 ./ci.sh runs each fuzz
#      target (PPM decoder, WAL replay) for a few seconds of random input
#      on top of their always-on seed corpora
#   6. vulnerability scan (opt-in): WALRUS_CI_VULN=1 ./ci.sh runs
#      govulncheck when the tool is installed, and skips gracefully when
#      it is not
set -eu
cd "$(dirname "$0")"

echo "== tier 0: gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== tier 0: go vet =="
go vet ./...

echo "== tier 0: walrus-lint =="
go run ./cmd/walrus-lint ./...

echo "== tier 1: build =="
go build ./...

echo "== tier 1: race (short) =="
go test -race -short ./...

echo "== tier 1: obs (scrape during stress) =="
go test -race -count=1 -run 'TestObsScrapeUnderLoad|TestObsCountDeterminism' .
go test -count=1 -run 'TestPrometheusOutputValidates|TestValidatePrometheusRejectsMalformed|TestHandlerEndpoints' ./internal/obs

echo "== tier 1: snapshot (acquire/release vs publish, leak check) =="
go test -race -count=1 -run 'TestSnapshot' .

echo "== tier 1: shard (determinism matrix, per-shard crash recovery, fan-out oracle) =="
go test -race -count=1 -run 'TestShard' .

echo "== tier 1: serve (handlers, admission, coalescing, graceful drain) =="
go test -race -count=1 -run 'TestServe' ./...

echo "== tier 1: full tests =="
go test ./...

if [ "${WALRUS_CI_FUZZ:-0}" = "1" ]; then
    echo "== tier 2: fuzz smoke =="
    go test -fuzz FuzzDecodePPM -fuzztime "${WALRUS_CI_FUZZTIME:-10s}" ./internal/imgio
    go test -fuzz FuzzReplayWAL -fuzztime "${WALRUS_CI_FUZZTIME:-10s}" ./internal/wal
fi

if [ "${WALRUS_CI_VULN:-0}" = "1" ]; then
    echo "== tier 2: govulncheck =="
    if command -v govulncheck >/dev/null 2>&1; then
        govulncheck ./...
    else
        echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"
    fi
fi

echo "CI OK"
