package walrus

import (
	"math/rand"
	"testing"

	"walrus/internal/imgio"
	"walrus/internal/match"
)

// testOptions shrinks windows so tests on 128x128 images are fast.
func testOptions() Options {
	o := DefaultOptions()
	o.Region.MaxWindow = 32
	o.Region.MinWindow = 32
	o.Region.Step = 8
	return o
}

// scene paints a base color with one square object of another color.
func scene(base, obj [3]float64, x, y, side int) *imgio.Image {
	im := imgio.New(128, 128, 3)
	im.FillRGB(base[0], base[1], base[2])
	for yy := y; yy < y+side; yy++ {
		for xx := x; xx < x+side; xx++ {
			im.SetRGB(xx, yy, obj[0], obj[1], obj[2])
		}
	}
	return im
}

var (
	green  = [3]float64{0.15, 0.65, 0.2}
	red    = [3]float64{0.85, 0.12, 0.1}
	blue   = [3]float64{0.1, 0.2, 0.85}
	yellow = [3]float64{0.9, 0.85, 0.1}
	gray   = [3]float64{0.5, 0.5, 0.5}
)

func TestAddAndQueryBasic(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("redgreen", scene(green, red, 32, 32, 48)); err != nil {
		t.Fatal(err)
	}
	if err := db.Add("bluegray", scene(gray, blue, 16, 16, 48)); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	if db.NumRegions() == 0 {
		t.Fatal("no regions indexed")
	}
	matches, stats, err := db.Query(scene(green, red, 32, 32, 48), DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("query returned nothing")
	}
	if matches[0].ID != "redgreen" {
		t.Fatalf("best match %q, want redgreen", matches[0].ID)
	}
	if matches[0].Similarity < 0.95 {
		t.Fatalf("self-similarity = %v, want ~1", matches[0].Similarity)
	}
	if stats.QueryRegions == 0 || stats.RegionsRetrieved == 0 || stats.CandidateImages == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	if stats.AvgRegionsPerQueryRegion() <= 0 {
		t.Fatal("AvgRegionsPerQueryRegion = 0")
	}
}

func TestAddDuplicateID(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	im := scene(green, red, 0, 0, 32)
	if err := db.Add("a", im); err != nil {
		t.Fatal(err)
	}
	if err := db.Add("a", im); err == nil {
		t.Fatal("duplicate Add accepted")
	}
}

// TestTranslationRobustness is the headline property: the same object at a
// different location still matches, and scores above an unrelated image.
func TestTranslationRobustness(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("translated", scene(green, red, 72, 72, 48)); err != nil {
		t.Fatal(err)
	}
	if err := db.Add("unrelated", scene(gray, blue, 16, 64, 40)); err != nil {
		t.Fatal(err)
	}
	matches, _, err := db.Query(scene(green, red, 8, 8, 48), DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].ID != "translated" {
		t.Fatalf("translated object not the best match: %+v", matches)
	}
	simOf := func(id string) float64 {
		for _, m := range matches {
			if m.ID == id {
				return m.Similarity
			}
		}
		return 0
	}
	if simOf("translated") <= simOf("unrelated") {
		t.Fatalf("translated %v <= unrelated %v", simOf("translated"), simOf("unrelated"))
	}
}

// TestScalingRobustness: the object at twice the size still matches.
func TestScalingRobustness(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("scaled", scene(green, red, 20, 20, 80)); err != nil {
		t.Fatal(err)
	}
	if err := db.Add("unrelated", scene(gray, yellow, 40, 40, 40)); err != nil {
		t.Fatal(err)
	}
	matches, _, err := db.Query(scene(green, red, 40, 40, 40), DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].ID != "scaled" {
		t.Fatalf("scaled object not the best match: %+v", matches)
	}
}

func TestQueryTauFiltersAndLimit(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	imgs := map[string]*imgio.Image{
		"a": scene(green, red, 10, 10, 50),
		"b": scene(green, red, 60, 60, 50),
		"c": scene(gray, blue, 30, 30, 50),
	}
	for id, im := range imgs {
		if err := db.Add(id, im); err != nil {
			t.Fatal(err)
		}
	}
	q := scene(green, red, 10, 10, 50)
	p := DefaultQueryParams()
	p.Tau = 0.99
	matches, _, err := db.Query(q, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m.Similarity < 0.99 {
			t.Fatalf("tau violated: %+v", m)
		}
	}
	p.Tau = 0
	p.Limit = 1
	matches, _, err = db.Query(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("limit violated: %d matches", len(matches))
	}
	if _, _, err := db.Query(q, QueryParams{Epsilon: -1}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}

// TestEpsilonMonotone: growing epsilon never shrinks the retrieved-region
// counts (Table 1's driving mechanism).
func TestEpsilonMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		im := imgio.New(128, 128, 3)
		for j := range im.Pix {
			im.Pix[j] = rng.Float64()
		}
		if err := db.Add(string(rune('a'+i)), im); err != nil {
			t.Fatal(err)
		}
	}
	q := scene(green, red, 40, 40, 40)
	prevRetrieved, prevImages := -1, -1
	for _, eps := range []float64{0.02, 0.05, 0.1, 0.3} {
		p := DefaultQueryParams()
		p.Epsilon = eps
		_, stats, err := db.Query(q, p)
		if err != nil {
			t.Fatal(err)
		}
		if stats.RegionsRetrieved < prevRetrieved || stats.CandidateImages < prevImages {
			t.Fatalf("eps %v: retrieval shrank: %+v", eps, stats)
		}
		prevRetrieved, prevImages = stats.RegionsRetrieved, stats.CandidateImages
	}
}

func TestMatcherVariants(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("target", scene(green, red, 30, 30, 60)); err != nil {
		t.Fatal(err)
	}
	q := scene(green, red, 50, 50, 60)
	sims := map[match.Algorithm]float64{}
	for _, alg := range []match.Algorithm{match.Quick, match.Greedy, match.Exact} {
		p := DefaultQueryParams()
		p.Matcher = alg
		matches, _, err := db.Query(q, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != 1 {
			t.Fatalf("%v: %d matches", alg, len(matches))
		}
		sims[alg] = matches[0].Similarity
	}
	if sims[match.Quick] < sims[match.Exact]-1e-9 || sims[match.Exact] < sims[match.Greedy]-1e-9 {
		t.Fatalf("ordering violated: %v", sims)
	}
}

func TestUseBBoxMode(t *testing.T) {
	o := testOptions()
	o.UseBBox = true
	db, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("target", scene(green, red, 20, 20, 60)); err != nil {
		t.Fatal(err)
	}
	matches, _, err := db.Query(scene(green, red, 40, 40, 60), DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].ID != "target" {
		t.Fatalf("bbox mode matches: %+v", matches)
	}
}

func TestRemove(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("keep", scene(green, red, 10, 10, 40)); err != nil {
		t.Fatal(err)
	}
	if err := db.Add("drop", scene(gray, blue, 10, 10, 40)); err != nil {
		t.Fatal(err)
	}
	before := db.NumRegions()
	ok, err := db.Remove("drop")
	if err != nil || !ok {
		t.Fatalf("Remove = %v, %v", ok, err)
	}
	if db.Len() != 1 || db.NumRegions() >= before {
		t.Fatalf("after remove: Len=%d regions=%d (before %d)", db.Len(), db.NumRegions(), before)
	}
	ok, err = db.Remove("drop")
	if err != nil || ok {
		t.Fatalf("second Remove = %v, %v", ok, err)
	}
	// The removed image never matches again.
	matches, _, err := db.Query(scene(gray, blue, 10, 10, 40), DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m.ID == "drop" {
			t.Fatal("removed image still retrieved")
		}
	}
	if got := db.IDs(); len(got) != 1 || got[0] != "keep" {
		t.Fatalf("IDs = %v", got)
	}
}

func TestRegionsOf(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("x", scene(green, red, 10, 10, 40)); err != nil {
		t.Fatal(err)
	}
	regions, ok := db.RegionsOf("x")
	if !ok || len(regions) == 0 {
		t.Fatalf("RegionsOf = %v, %v", regions, ok)
	}
	if _, ok := db.RegionsOf("missing"); ok {
		t.Fatal("RegionsOf found missing image")
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	images := map[string]*imgio.Image{
		"flower1": scene(green, red, 20, 20, 50),
		"flower2": scene(green, red, 60, 50, 50),
		"ocean":   scene(blue, gray, 30, 80, 30),
	}
	for id, im := range images {
		if err := db.Add(id, im); err != nil {
			t.Fatal(err)
		}
	}
	q := scene(green, red, 40, 30, 50)
	wantMatches, _, err := db.Query(q, DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 3 {
		t.Fatalf("reopened Len = %d", re.Len())
	}
	gotMatches, _, err := re.Query(q, DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(gotMatches) != len(wantMatches) {
		t.Fatalf("match counts differ after reopen: %d vs %d", len(gotMatches), len(wantMatches))
	}
	for i := range gotMatches {
		if gotMatches[i].ID != wantMatches[i].ID {
			t.Fatalf("rank %d: %q vs %q", i, gotMatches[i].ID, wantMatches[i].ID)
		}
		if d := gotMatches[i].Similarity - wantMatches[i].Similarity; d > 1e-12 || d < -1e-12 {
			t.Fatalf("rank %d similarity drifted: %v vs %v", i, gotMatches[i].Similarity, wantMatches[i].Similarity)
		}
	}
	// Adding to a reopened database works.
	if err := re.Add("new", scene(yellow, blue, 10, 10, 40)); err != nil {
		t.Fatal(err)
	}
	if re.Len() != 4 {
		t.Fatalf("Len after add = %d", re.Len())
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("Open succeeded on empty directory")
	}
}

func TestInMemoryCloseIsNoop(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	o := testOptions()
	o.Region.Signature = 3
	if _, err := New(o); err == nil {
		t.Fatal("New accepted invalid region options")
	}
	if _, err := Create(t.TempDir(), o); err == nil {
		t.Fatal("Create accepted invalid region options")
	}
}

// TestQueryStatsBreakdown: the phase timings are populated and bounded by
// the total.
func TestQueryStatsBreakdown(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add("a", scene(green, red, 20, 20, 50)); err != nil {
		t.Fatal(err)
	}
	_, stats, err := db.Query(scene(green, red, 30, 30, 50), DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if stats.ExtractTime <= 0 {
		t.Fatalf("ExtractTime = %v", stats.ExtractTime)
	}
	if stats.ProbeTime < 0 || stats.ScoreTime < 0 {
		t.Fatalf("negative phase times: %+v", stats)
	}
	if sum := stats.ExtractTime + stats.ProbeTime + stats.ScoreTime; sum > stats.Elapsed+stats.Elapsed/2 {
		t.Fatalf("phase times %v exceed elapsed %v", sum, stats.Elapsed)
	}
}
