package walrus

import (
	"fmt"
	"math/rand"
	"testing"

	"walrus/internal/imgio"
)

// corpus50 builds a seeded 50-image corpus of synthetic scenes with varied
// object positions, sizes and colors.
func corpus50(t *testing.T) []BatchItem {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	palette := [][2][3]float64{
		{green, red}, {gray, blue}, {green, yellow}, {gray, red}, {blue, yellow},
	}
	items := make([]BatchItem, 50)
	for i := range items {
		p := palette[i%len(palette)]
		side := 32 + rng.Intn(48)
		x := rng.Intn(128 - side)
		y := rng.Intn(128 - side)
		items[i] = BatchItem{
			ID:    fmt.Sprintf("corpus-%02d", i),
			Image: scene(p[0], p[1], x, y, side),
		}
	}
	return items
}

// assertSameRanking fails unless two databases rank a query identically —
// same ids, similarities, and matching-region counts in the same order.
func assertSameRanking(t *testing.T, label string, a, b *DB, q *imgio.Image, pa, pb QueryParams) {
	t.Helper()
	ma, sa, err := a.Query(q, pa)
	if err != nil {
		t.Fatalf("%s: serial query: %v", label, err)
	}
	mb, sb, err := b.Query(q, pb)
	if err != nil {
		t.Fatalf("%s: parallel query: %v", label, err)
	}
	if sa.RegionsRetrieved != sb.RegionsRetrieved || sa.CandidateImages != sb.CandidateImages {
		t.Fatalf("%s: stats differ: retrieved %d/%d candidates %d/%d",
			label, sa.RegionsRetrieved, sb.RegionsRetrieved, sa.CandidateImages, sb.CandidateImages)
	}
	if len(ma) != len(mb) {
		t.Fatalf("%s: %d matches vs %d", label, len(ma), len(mb))
	}
	for i := range ma {
		if ma[i].ID != mb[i].ID || ma[i].Similarity != mb[i].Similarity ||
			ma[i].MatchingRegions != mb[i].MatchingRegions {
			t.Fatalf("%s: rank %d differs: %+v vs %+v", label, i, ma[i], mb[i])
		}
	}
}

// TestAddBatchParallelDeterminism: ingesting the corpus with one worker and
// with four workers must produce databases that rank every query
// identically — the ordered-merge guarantee of the parallel pipeline.
func TestAddBatchParallelDeterminism(t *testing.T) {
	items := corpus50(t)
	serialOpts := testOptions()
	serialOpts.Parallelism = 1
	serial, err := New(serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.AddBatch(items, 1); err != nil {
		t.Fatal(err)
	}
	parOpts := testOptions()
	parOpts.Parallelism = 4
	par, err := New(parOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := par.AddBatch(items, 4); err != nil {
		t.Fatal(err)
	}
	ps := DefaultQueryParams()
	ps.Parallelism = 1
	pp := DefaultQueryParams()
	pp.Parallelism = 4
	for _, q := range []*imgio.Image{items[0].Image, items[7].Image, scene(green, red, 24, 24, 40)} {
		assertSameRanking(t, "AddBatch", serial, par, q, ps, pp)
	}
}

// TestBuildFromParallelDeterminism: the STR bulk-load path has the same
// guarantee.
func TestBuildFromParallelDeterminism(t *testing.T) {
	items := corpus50(t)
	serialOpts := testOptions()
	serialOpts.Parallelism = 1
	serial, err := BuildFrom(serialOpts, items, 1)
	if err != nil {
		t.Fatal(err)
	}
	parOpts := testOptions()
	parOpts.Parallelism = 4
	par, err := BuildFrom(parOpts, items, 4)
	if err != nil {
		t.Fatal(err)
	}
	ps := DefaultQueryParams()
	ps.Parallelism = 1
	pp := DefaultQueryParams()
	pp.Parallelism = 4
	for _, q := range []*imgio.Image{items[3].Image, scene(gray, blue, 40, 40, 44)} {
		assertSameRanking(t, "BuildFrom", serial, par, q, ps, pp)
	}
}

// TestQueryParallelismDeterminism: on one database, every Parallelism
// setting must return the same matches and stats.
func TestQueryParallelismDeterminism(t *testing.T) {
	items := corpus50(t)
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddBatch(items, 0); err != nil {
		t.Fatal(err)
	}
	q := items[11].Image
	for _, par := range []int{0, 2, 4, 16} {
		ps := DefaultQueryParams()
		ps.Parallelism = 1
		pp := DefaultQueryParams()
		pp.Parallelism = par
		assertSameRanking(t, fmt.Sprintf("Parallelism=%d", par), db, db, q, ps, pp)
	}
}
