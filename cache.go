package walrus

import (
	"container/list"
	"context"
	"math"
	"sync"

	"walrus/internal/imgio"
	"walrus/internal/obs"
)

// The version-keyed query result cache. A repeated query against an
// unchanged database re-extracts, re-probes and re-scores for an answer
// that cannot differ; the cache short-circuits that by keying each
// result on (pinned version(s), query fingerprint, resolved parameters).
// The versions in the key make invalidation structural: a committed
// write publishes a new version, every subsequent lookup misses, and the
// superseded entries age out by LRU — there is no invalidation hook to
// get wrong. The same queryCache serves DB (keyed on the single version)
// and Sharded (keyed on a hash of the version vector); scene queries
// bypass it, since their crop parameters are not part of the key.

// cacheKey identifies one cacheable query result. QueryParams is
// comparable, so the key works directly as a map key; canonicalParams
// zeroes the fields that cannot affect results.
type cacheKey struct {
	versions uint64
	query    uint64
	params   QueryParams
}

// canonicalParams strips the result-neutral fields from the key:
// Parallelism changes only wall-clock time, and NoCache never reaches
// the cache.
func canonicalParams(p QueryParams) QueryParams {
	p.Parallelism = 0
	p.NoCache = false
	return p
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds one 64-bit word into the hash: FNV-1a's xor-multiply
// taken a word at a time, with an extra fold-and-multiply so high-byte
// differences avalanche. Word-at-a-time matters: a cache hit pays one
// mix per query pixel, and the byte-wise variant would cost as much as
// a small query.
func fnvMix(h, v uint64) uint64 {
	h ^= v
	h *= fnvPrime64
	h ^= h >> 32
	h *= fnvPrime64
	return h
}

// hashQueryImage fingerprints a query image — dimensions and every pixel
// — with FNV-1a. Hashing is a single pass over the pixels, far cheaper
// than the wavelet decomposition a miss pays.
func hashQueryImage(im *imgio.Image) uint64 {
	h := fnvMix(uint64(fnvOffset64), 1) // domain tag: by-pixels
	h = fnvMix(h, uint64(im.W))
	h = fnvMix(h, uint64(im.H))
	h = fnvMix(h, uint64(im.C))
	for _, v := range im.Pix {
		h = fnvMix(h, math.Float64bits(v))
	}
	return h
}

// hashQueryID fingerprints a QueryByID query by its image id.
func hashQueryID(id string) uint64 {
	h := fnvMix(uint64(fnvOffset64), 2) // domain tag: by-id
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= fnvPrime64
	}
	return h
}

// versionKey folds a fleet's version vector into the key's version slot.
func versionKey(vv []uint64) uint64 {
	h := fnvMix(uint64(fnvOffset64), uint64(len(vv)))
	for _, v := range vv {
		h = fnvMix(h, v)
	}
	return h
}

// cacheEntry is one cached result. The matches slice is private to the
// cache — stored and served as copies — so callers may reorder or
// truncate what they receive.
type cacheEntry struct {
	key     cacheKey
	matches []Match
	stats   QueryStats
}

// queryCache is a mutex-guarded LRU over cacheKey. Lookups are two map
// operations and a list splice; the lock is held for no longer than
// that, never across a query.
type queryCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element
}

func newQueryCache(max int) *queryCache {
	return &queryCache{max: max, ll: list.New(), items: make(map[cacheKey]*list.Element, max)}
}

// get returns the cached result for key, refreshing its recency.
func (c *queryCache) get(key cacheKey) ([]Match, QueryStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, QueryStats{}, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.matches, e.stats, true
}

// put stores a result, evicting from the cold end past capacity, and
// reports how many entries were evicted.
func (c *queryCache) put(key cacheKey, matches []Match, stats QueryStats) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.matches, e.stats = matches, stats
		return 0
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, matches: matches, stats: stats})
	evicted := 0
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}

// len reports the current entry count.
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheMetrics is the instrument set of one result cache, embedded in
// both dbMetrics and shardedMetrics.
type cacheMetrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	entries   *obs.Gauge
}

// newCacheMetrics resolves the walrus_cache_* handles; n is the owning
// metric set's name-scoping helper.
func newCacheMetrics(reg *obs.Registry, n func(string) string) cacheMetrics {
	return cacheMetrics{
		hits:      reg.Counter(n("cache_hits_total"), "Queries served from the result cache."),
		misses:    reg.Counter(n("cache_misses_total"), "Cacheable queries that executed and populated the cache."),
		evictions: reg.Counter(n("cache_evictions_total"), "Result-cache entries evicted by LRU."),
		entries:   reg.Gauge(n("cache_entries"), "Result-cache entries currently held."),
	}
}

// cachedQuery wraps one query execution in the cache protocol shared by
// DB and Sharded: bypass on NoCache, serve a copy on hit (with the
// cached stats, re-stamped with the lookup time and a "hit" marker),
// otherwise run the query and store a private copy of the result. An
// EXPLAIN context gets the cache outcome as a first-class funnel row.
func cachedQuery(ctx context.Context, c *queryCache, cm *cacheMetrics, versions uint64, sharded bool, qhash uint64, p QueryParams, run func() ([]Match, QueryStats, error)) ([]Match, QueryStats, error) {
	if p.NoCache {
		matches, stats, err := run()
		if err == nil {
			stats.Cache = "bypass"
		}
		return matches, stats, err
	}
	start := statsClock()
	key := cacheKey{versions: versions, query: qhash, params: canonicalParams(p)}
	if cached, stats, ok := c.get(key); ok {
		out := make([]Match, len(cached))
		copy(out, cached)
		stats.Elapsed = statsSince(start)
		stats.Cache = "hit"
		if cm != nil {
			cm.hits.Inc()
		}
		if qt := queryTraceFrom(ctx); qt != nil {
			qt.fillCacheHit(p, sharded, stats, len(out), stats.Elapsed.Nanoseconds())
		}
		return out, stats, nil
	}
	lookupNS := statsSince(start).Nanoseconds()
	matches, stats, err := run()
	if err != nil {
		return matches, stats, err
	}
	stats.Cache = "miss"
	stored := make([]Match, len(matches))
	copy(stored, matches)
	evicted := c.put(key, stored, stats)
	if cm != nil {
		cm.misses.Inc()
		if evicted > 0 {
			cm.evictions.Add(uint64(evicted))
		}
		cm.entries.Set(int64(c.len()))
	}
	if qt := queryTraceFrom(ctx); qt != nil {
		qt.noteCacheMiss(lookupNS)
	}
	return matches, stats, nil
}
