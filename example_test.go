package walrus_test

import (
	"fmt"

	"walrus"
	"walrus/internal/imgio"
)

// exampleScene paints a base color with one square object, the smallest
// interesting input for region-based retrieval.
func exampleScene(br, bg, bb, or, og, ob float64, x, y, side int) *imgio.Image {
	im := imgio.New(128, 128, 3)
	im.FillRGB(br, bg, bb)
	for yy := y; yy < y+side; yy++ {
		for xx := x; xx < x+side; xx++ {
			im.SetRGB(xx, yy, or, og, ob)
		}
	}
	return im
}

// Example indexes two images and retrieves the one whose regions match a
// query with the shared object at a different location.
func Example() {
	db, err := walrus.New(walrus.DefaultOptions())
	if err != nil {
		panic(err)
	}
	// Red square on green, bottom-right.
	_ = db.Add("red-on-green", exampleScene(0.15, 0.6, 0.2, 0.85, 0.1, 0.1, 70, 70, 50))
	// Blue square on gray.
	_ = db.Add("blue-on-gray", exampleScene(0.5, 0.5, 0.5, 0.1, 0.2, 0.85, 20, 20, 50))

	// Query: the red square moved to the top-left corner.
	query := exampleScene(0.15, 0.6, 0.2, 0.85, 0.1, 0.1, 8, 8, 50)
	matches, _, err := db.Query(query, walrus.DefaultQueryParams())
	if err != nil {
		panic(err)
	}
	fmt.Println("best match:", matches[0].ID)
	// Output: best match: red-on-green
}

// ExampleDB_QueryScene retrieves images containing a user-selected
// rectangle of the query image — the "user-specified scene".
func ExampleDB_QueryScene() {
	db, err := walrus.New(walrus.DefaultOptions())
	if err != nil {
		panic(err)
	}
	_ = db.Add("has-object", exampleScene(0.15, 0.6, 0.2, 0.85, 0.1, 0.1, 60, 60, 64))
	_ = db.Add("no-object", exampleScene(0.5, 0.5, 0.5, 0.1, 0.2, 0.85, 20, 20, 64))

	// The query image contains the object top-left plus unrelated clutter;
	// select only the object's rectangle.
	query := exampleScene(0.15, 0.6, 0.2, 0.85, 0.1, 0.1, 0, 0, 64)
	for y := 80; y < 120; y++ {
		for x := 20; x < 120; x++ {
			query.SetRGB(x, y, 0.9, 0.9, 0.2)
		}
	}
	matches, _, err := db.QueryScene(query, 0, 0, 64, 64, walrus.DefaultQueryParams())
	if err != nil {
		panic(err)
	}
	fmt.Println("best match:", matches[0].ID)
	// Output: best match: has-object
}

// ExampleDB_Stats shows database introspection.
func ExampleDB_Stats() {
	db, err := walrus.New(walrus.DefaultOptions())
	if err != nil {
		panic(err)
	}
	_ = db.Add("one", exampleScene(0.15, 0.6, 0.2, 0.85, 0.1, 0.1, 10, 10, 50))
	s := db.Stats()
	fmt.Printf("images=%d dim=%d disk=%v\n", s.Images, s.SignatureDim, s.DiskBacked)
	// Output: images=1 dim=12 disk=false
}
