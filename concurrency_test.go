package walrus

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentQueries: many goroutines query the same database while
// others add images; run with -race to check synchronization.
func TestConcurrentQueries(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := db.Add(fmt.Sprintf("seed-%d", i), scene(green, red, i*12, i*9, 40)); err != nil {
			t.Fatal(err)
		}
	}
	q := scene(green, red, 24, 24, 40)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	// Readers.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, _, err := db.Query(q, DefaultQueryParams()); err != nil {
					errs <- err
					return
				}
				db.Stats()
				db.IDs()
			}
		}()
	}
	// Writers.
	for g := 0; g < 3; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				id := fmt.Sprintf("w%d-%d", g, i)
				if err := db.Add(id, scene(gray, blue, g*10+i, i*13, 40)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if db.Len() != 4+3*5 {
		t.Fatalf("Len = %d, want %d", db.Len(), 4+3*5)
	}
	// The database is still consistent: a query succeeds and every id is
	// queryable.
	matches, _, err := db.Query(q, DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no matches after concurrent load")
	}
}

// TestConcurrentRemove: removals interleaved with queries stay consistent.
func TestConcurrentRemove(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := db.Add(fmt.Sprintf("img-%d", i), scene(green, red, i*8, i*6, 40)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	q := scene(green, red, 20, 20, 40)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i += 2 {
			if _, err := db.Remove(fmt.Sprintf("img-%d", i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, _, err := db.Query(q, DefaultQueryParams()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if db.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", db.Len(), n/2)
	}
}
