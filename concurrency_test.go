package walrus

import (
	"fmt"
	"sync"
	"testing"

	"walrus/internal/imgio"
)

// TestConcurrentQueries: many goroutines query the same database while
// others add images; run with -race to check synchronization.
func TestConcurrentQueries(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := db.Add(fmt.Sprintf("seed-%d", i), scene(green, red, i*12, i*9, 40)); err != nil {
			t.Fatal(err)
		}
	}
	q := scene(green, red, 24, 24, 40)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	// Readers.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, _, err := db.Query(q, DefaultQueryParams()); err != nil {
					errs <- err
					return
				}
				db.Stats()
				db.IDs()
			}
		}()
	}
	// Writers.
	for g := 0; g < 3; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				id := fmt.Sprintf("w%d-%d", g, i)
				if err := db.Add(id, scene(gray, blue, g*10+i, i*13, 40)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if db.Len() != 4+3*5 {
		t.Fatalf("Len = %d, want %d", db.Len(), 4+3*5)
	}
	// The database is still consistent: a query succeeds and every id is
	// queryable.
	matches, _, err := db.Query(q, DefaultQueryParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no matches after concurrent load")
	}
}

// TestConcurrentMixedOracle runs adds, removes and queries concurrently
// over a seeded corpus, then checks the surviving database answers queries
// exactly like a serially built oracle containing the same final image
// set. It is short-mode friendly and meant to run under -race in CI.
func TestConcurrentMixedOracle(t *testing.T) {
	type item struct {
		id string
		im *imgio.Image
	}
	var seeds, added []item
	for i := 0; i < 8; i++ {
		seeds = append(seeds, item{fmt.Sprintf("seed-%d", i), scene(green, red, (i*9)%70, (i*13)%70, 40)})
	}
	for i := 0; i < 6; i++ {
		added = append(added, item{fmt.Sprintf("new-%d", i), scene(gray, blue, (i*11)%70, (i*7)%70, 44)})
	}
	removed := []string{"seed-1", "seed-4", "seed-6"}

	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range seeds {
		if err := db.Add(s.id, s.im); err != nil {
			t.Fatal(err)
		}
	}

	queries := []*imgio.Image{
		scene(green, red, 20, 20, 40),
		scene(gray, blue, 30, 30, 44),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Adders: two goroutines insert disjoint halves of the new images.
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := g; i < len(added); i += 2 {
				if err := db.Add(added[i].id, added[i].im); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Remover: deletes a fixed subset of the seeds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, id := range removed {
			if _, err := db.Remove(id); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Queriers: hammer reads (parallel and serial execution) while the
	// writers run. Each iteration works on one explicit snapshot and
	// checks it observed exactly one published version: every accessor
	// agrees on the image set, and query results never name an image the
	// snapshot does not contain.
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := DefaultQueryParams()
			p.Parallelism = g % 3 // mix of GOMAXPROCS, serial, and 2-way
			lastVersion := uint64(0)
			for i := 0; i < 8; i++ {
				s, err := db.Snapshot()
				if err != nil {
					errs <- err
					return
				}
				if v := s.Version(); v < lastVersion {
					errs <- fmt.Errorf("snapshot version went backwards: %d after %d", v, lastVersion)
					s.Release()
					return
				} else {
					lastVersion = v
				}
				ids := s.IDs()
				if s.Len() != len(ids) || s.Stats().Images != s.Len() {
					errs <- fmt.Errorf("torn snapshot v%d: Len %d, IDs %d, Stats.Images %d",
						s.Version(), s.Len(), len(ids), s.Stats().Images)
					s.Release()
					return
				}
				present := make(map[string]bool, len(ids))
				for _, id := range ids {
					present[id] = true
				}
				matches, _, err := s.Query(queries[i%len(queries)], p)
				if err != nil {
					errs <- err
					s.Release()
					return
				}
				for _, m := range matches {
					if !present[m.ID] {
						errs <- fmt.Errorf("snapshot v%d: query matched %q outside its version", s.Version(), m.ID)
						s.Release()
						return
					}
				}
				s.Stats()
				s.RegionsOf(seeds[0].id)
				s.Release()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Serial oracle over the expected final image set.
	oracle, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	gone := make(map[string]bool)
	for _, id := range removed {
		gone[id] = true
	}
	want := 0
	for _, s := range seeds {
		if gone[s.id] {
			continue
		}
		if err := oracle.Add(s.id, s.im); err != nil {
			t.Fatal(err)
		}
		want++
	}
	for _, a := range added {
		if err := oracle.Add(a.id, a.im); err != nil {
			t.Fatal(err)
		}
		want++
	}
	if db.Len() != want {
		t.Fatalf("Len = %d after mixed workload, want %d", db.Len(), want)
	}

	// Every query must rank identically: the probe returns all regions in
	// the epsilon ball regardless of index construction order, and the
	// quick matcher's bitmap arithmetic is order-independent.
	for qi, q := range queries {
		p := DefaultQueryParams()
		got, _, err := db.Query(q, p)
		if err != nil {
			t.Fatal(err)
		}
		p.Parallelism = 1
		wantMatches, _, err := oracle.Query(q, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(wantMatches) {
			t.Fatalf("query %d: %d matches, oracle found %d", qi, len(got), len(wantMatches))
		}
		for i := range got {
			if got[i].ID != wantMatches[i].ID || got[i].Similarity != wantMatches[i].Similarity {
				t.Fatalf("query %d rank %d: got %s/%v, oracle %s/%v",
					qi, i, got[i].ID, got[i].Similarity, wantMatches[i].ID, wantMatches[i].Similarity)
			}
		}
	}
}

// TestConcurrentRemove: removals interleaved with queries stay consistent.
func TestConcurrentRemove(t *testing.T) {
	db, err := New(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := db.Add(fmt.Sprintf("img-%d", i), scene(green, red, i*8, i*6, 40)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	q := scene(green, red, 20, 20, 40)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i += 2 {
			if _, err := db.Remove(fmt.Sprintf("img-%d", i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, _, err := db.Query(q, DefaultQueryParams()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if db.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", db.Len(), n/2)
	}
}
